"""Simulated raw-data storage with page-granular access accounting.

The paper's findings hinge on the *access pattern* each method induces on the
raw data file: full sequential scans (UCR Suite), skip-sequential scans with
many seeks (ADS+, VA+file), or clustered leaf reads (DSTree, iSAX2+, SFA).
Since this reproduction keeps data in memory, the :class:`SeriesStore` wraps the
dataset and counts every access at page granularity, distinguishing sequential
page reads from random accesses (seeks).  The hardware cost models in
:mod:`repro.evaluation.hardware` turn those counts into simulated I/O time.
"""

from __future__ import annotations

import numpy as np

from .series import Dataset
from .stats import AccessCounter

__all__ = ["SeriesStore", "DEFAULT_PAGE_BYTES"]

#: default page size in bytes (a typical file-system block / RAID stripe unit).
DEFAULT_PAGE_BYTES = 65536


class SeriesStore:
    """Page-oriented view over a :class:`~repro.core.series.Dataset`.

    The store exposes three access styles used by the methods in the paper:

    * :meth:`scan` — full sequential scan (UCR Suite, MASS, index build passes);
    * :meth:`read_block` — contiguous block read, counted as one random access
      (seek) plus the sequential pages of the block (leaf reads, skip-sequential
      refinement of ADS+/VA+file);
    * :meth:`read_one` — single-series random access.

    Every call updates the shared :class:`~repro.core.stats.AccessCounter`, which
    the experiment runner snapshots around each query.

    Reads return *views* into the in-memory dataset wherever NumPy indexing
    allows (:meth:`scan`, :meth:`read_contiguous`, :meth:`read_one`, and slice
    :meth:`peek` calls); only fancy-indexed block reads materialize copies.
    Callers must therefore never mutate a returned block.  The store enforces
    this by clearing the ``WRITEABLE`` flag on the dataset array, so an
    accidental in-place write raises instead of silently corrupting the
    collection every other reader shares.
    """

    def __init__(self, dataset: Dataset, page_bytes: int = DEFAULT_PAGE_BYTES) -> None:
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.dataset = dataset
        # Reads hand out views; freeze the backing array so callers cannot
        # mutate the shared collection through them.
        dataset.values.setflags(write=False)
        self.page_bytes = int(page_bytes)
        self.counter = AccessCounter()
        self._series_bytes = dataset.length * dataset.values.dtype.itemsize
        self._series_per_page = max(1, self.page_bytes // self._series_bytes)

    # -- geometry ------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.dataset.count

    @property
    def length(self) -> int:
        return self.dataset.length

    @property
    def series_bytes(self) -> int:
        """Size of one series on disk in bytes."""
        return self._series_bytes

    @property
    def series_per_page(self) -> int:
        """Number of series that fit in one page."""
        return self._series_per_page

    @property
    def total_pages(self) -> int:
        """Number of pages occupied by the raw data file."""
        return (self.count + self._series_per_page - 1) // self._series_per_page

    def pages_for_series(self, count: int) -> int:
        """Number of pages needed to hold ``count`` consecutive series."""
        if count <= 0:
            return 0
        return (count + self._series_per_page - 1) // self._series_per_page

    # -- access styles ---------------------------------------------------------
    def scan(self) -> np.ndarray:
        """Full sequential scan of the raw file.

        Counted as one seek (positioning at the start of the file) plus the
        sequential pages of the whole file.
        """
        self.counter.random_accesses += 1
        self.counter.sequential_pages += self.total_pages
        self.counter.series_read += self.count
        self.counter.bytes_read += self.count * self._series_bytes
        return self.dataset.values

    def read_block(self, positions: np.ndarray | list[int]) -> np.ndarray:
        """Read the series at ``positions`` as one contiguous block access.

        The caller guarantees the positions belong to one physical block (e.g.
        the series materialized in one index leaf).  Counted as a single random
        access plus the sequential pages covering the block.  The returned
        block must be treated as read-only, exactly like the views handed out
        by :meth:`scan`/:meth:`read_contiguous`/:meth:`read_one`.
        """
        idx = np.asarray(positions, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, self.length), dtype=self.dataset.values.dtype)
        self.counter.random_accesses += 1
        self.counter.sequential_pages += self.pages_for_series(int(idx.size))
        self.counter.series_read += int(idx.size)
        self.counter.bytes_read += int(idx.size) * self._series_bytes
        return self.dataset.values[idx]

    def read_contiguous(self, start: int, stop: int) -> np.ndarray:
        """Read series ``start:stop`` from the raw file as one skip + block read.

        This is the access pattern of skip-sequential algorithms (ADS+ SIMS,
        VA+file refinement): every gap in the scan costs one seek.
        """
        if stop <= start:
            return np.empty((0, self.length), dtype=self.dataset.values.dtype)
        count = stop - start
        self.counter.random_accesses += 1
        self.counter.sequential_pages += self.pages_for_series(count)
        self.counter.series_read += count
        self.counter.bytes_read += count * self._series_bytes
        return self.dataset.values[start:stop]

    def read_one(self, position: int) -> np.ndarray:
        """Random access to a single series (a read-only view, not a copy)."""
        self.counter.random_accesses += 1
        self.counter.sequential_pages += 1
        self.counter.series_read += 1
        self.counter.bytes_read += self._series_bytes
        return self.dataset.values[position]

    def peek(self, positions: np.ndarray | list[int] | slice) -> np.ndarray:
        """Access series *without* accounting.

        Used only for building summaries where the build pass is already
        accounted for with an explicit :meth:`scan`.
        """
        return self.dataset.values[positions]

    def fork(self) -> "SeriesStore":
        """A reader view of this store with a private access counter.

        The fork shares the (frozen, zero-copy) dataset and page geometry but
        counts accesses into a fresh :class:`AccessCounter`, which is the
        thread-safety contract of parallel execution: each worker thread reads
        through its own fork and the coordinator merges the forks' counters
        into this store's counter after joining (``counter.merge``), so no
        counter is ever mutated from two threads.
        """
        return SeriesStore(self.dataset, page_bytes=self.page_bytes)

    # -- bookkeeping -----------------------------------------------------------
    def reset_counters(self) -> None:
        self.counter.reset()

    def snapshot(self) -> AccessCounter:
        return self.counter.snapshot()

    def since(self, snapshot: AccessCounter) -> AccessCounter:
        return self.counter.diff(snapshot)
