"""Accounting structures for index construction and query answering.

The paper's evaluation is driven by counters, not just wall-clock time: number
of random disk accesses (one per leaf visit, or one per skip for skip-sequential
methods), number of sequential accesses, number of raw series examined (which
defines the pruning ratio), and CPU vs I/O time breakdowns.  These dataclasses
collect exactly those quantities so every method reports them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AccessCounter",
    "QueryStats",
    "IndexStats",
    "aggregate_query_stats",
]


@dataclass
class AccessCounter:
    """Low-level storage access counters (shared by a store and its readers).

    Thread safety: the counter is a plain accumulator with **no locking**, and
    ``+=`` on its fields is not atomic.  The contract for parallel execution
    is therefore *per-worker counters, merged at the end*: every worker thread
    accumulates into its own private counter (obtained via
    :meth:`~repro.core.storage.SeriesStore.fork`) and the coordinating thread
    folds the workers' counters into the shared one with :meth:`merge` after
    joining them.  A counter instance must never be mutated concurrently from
    two threads; :mod:`repro.core.parallel` and the sharded index wrapper
    follow this protocol everywhere.

    The same protocol crosses process boundaries: a pickled
    :class:`~repro.core.storage.SeriesStore` arrives in a worker process with
    a **fresh** counter (``__getstate__`` drops the parent's — shipping live
    tallies would double-count them on merge), the worker accumulates locally,
    and the accumulated *delta* rides back in the task result for the
    coordinator to :meth:`merge` after the join.  Every field — including
    ``retries`` and the ``bytes_written``/``bytes_read`` halves of a
    construction-buffer spill — is additive, so thread-mode and process-mode
    totals for the same work are identical.
    """

    sequential_pages: int = 0
    random_accesses: int = 0
    series_read: int = 0
    bytes_read: int = 0
    #: bytes actually stored for the rows served (equal to ``bytes_read`` on
    #: the uncompressed backends; the compressed backend's stored block bytes
    #: otherwise, so the logical/physical split quantifies the compression win).
    physical_bytes_read: int = 0
    #: bytes written to the simulated storage (construction-buffer spills).
    bytes_written: int = 0
    #: measured wall-clock seconds spent in backend reads (only accumulated by
    #: stores opened with ``measure_io=True``; calibrates the simulated models).
    measured_io_seconds: float = 0.0
    #: backend reads retried after a transient fault (zero on healthy storage;
    #: the resilience layer's visibility into how hard it had to work).
    retries: int = 0

    def reset(self) -> None:
        self.sequential_pages = 0
        self.random_accesses = 0
        self.series_read = 0
        self.bytes_read = 0
        self.physical_bytes_read = 0
        self.bytes_written = 0
        self.measured_io_seconds = 0.0
        self.retries = 0

    def snapshot(self) -> "AccessCounter":
        return AccessCounter(
            sequential_pages=self.sequential_pages,
            random_accesses=self.random_accesses,
            series_read=self.series_read,
            bytes_read=self.bytes_read,
            physical_bytes_read=self.physical_bytes_read,
            bytes_written=self.bytes_written,
            measured_io_seconds=self.measured_io_seconds,
            retries=self.retries,
        )

    def diff(self, earlier: "AccessCounter") -> "AccessCounter":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return AccessCounter(
            sequential_pages=self.sequential_pages - earlier.sequential_pages,
            random_accesses=self.random_accesses - earlier.random_accesses,
            series_read=self.series_read - earlier.series_read,
            bytes_read=self.bytes_read - earlier.bytes_read,
            physical_bytes_read=self.physical_bytes_read - earlier.physical_bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            measured_io_seconds=self.measured_io_seconds - earlier.measured_io_seconds,
            retries=self.retries - earlier.retries,
        )

    def merge(self, other: "AccessCounter") -> None:
        self.sequential_pages += other.sequential_pages
        self.random_accesses += other.random_accesses
        self.series_read += other.series_read
        self.bytes_read += other.bytes_read
        self.physical_bytes_read += other.physical_bytes_read
        self.bytes_written += other.bytes_written
        self.measured_io_seconds += other.measured_io_seconds
        self.retries += other.retries


@dataclass
class QueryStats:
    """Per-query accounting, mirroring the measures in §4.2 of the paper."""

    #: raw series whose full-resolution distance to the query was computed.
    series_examined: int = 0
    #: total series in the collection (used to derive the pruning ratio).
    dataset_size: int = 0
    #: summarized candidates whose lower bound was evaluated.
    lower_bounds_computed: int = 0
    #: random disk accesses (leaf visits, or skips for skip-sequential methods).
    random_accesses: int = 0
    #: sequential page reads.
    sequential_pages: int = 0
    #: logical bytes read from the simulated raw-data file (uncompressed view).
    bytes_read: int = 0
    #: physical bytes read from storage (== ``bytes_read`` except on the
    #: compressed backend, where it counts the stored block bytes actually
    #: decoded — the measure the two-phase pruned scans minimize).
    physical_bytes_read: int = 0
    #: index nodes visited (internal + leaf).
    nodes_visited: int = 0
    #: leaf nodes visited.
    leaves_visited: int = 0
    #: CPU seconds spent (measured, Python-level; shape-only signal).
    cpu_seconds: float = 0.0
    #: simulated I/O seconds under the active hardware cost model.
    io_seconds: float = 0.0
    #: measured wall-clock I/O seconds (only populated by ``measure_io`` stores).
    measured_io_seconds: float = 0.0
    #: distance of the final (exact or approximate) answer.
    answer_distance: float = float("nan")
    #: backend reads retried after transient faults while answering this query.
    retries: int = 0
    #: shard workers that failed permanently (after re-fork/re-execution) and
    #: were dropped from this query's answer under ``allow_partial``.
    shards_failed: int = 0
    #: the degraded-answer flag: ``True`` when any part of the collection was
    #: *not* consulted (failed or deadline-expired shards), so the reported
    #: neighbors are correct for the data examined but may be incomplete.
    degraded: bool = False

    @property
    def pruning_ratio(self) -> float:
        """``1 - (#raw series examined / #series in dataset)`` (higher is better)."""
        if self.dataset_size <= 0:
            return 0.0
        ratio = 1.0 - (self.series_examined / self.dataset_size)
        return max(0.0, min(1.0, ratio))

    @property
    def total_seconds(self) -> float:
        return self.cpu_seconds + self.io_seconds

    def merge(self, other: "QueryStats") -> None:
        self.series_examined += other.series_examined
        self.lower_bounds_computed += other.lower_bounds_computed
        self.random_accesses += other.random_accesses
        self.sequential_pages += other.sequential_pages
        self.bytes_read += other.bytes_read
        self.physical_bytes_read += other.physical_bytes_read
        self.nodes_visited += other.nodes_visited
        self.leaves_visited += other.leaves_visited
        self.cpu_seconds += other.cpu_seconds
        self.io_seconds += other.io_seconds
        self.measured_io_seconds += other.measured_io_seconds
        self.retries += other.retries
        self.shards_failed += other.shards_failed
        self.degraded = self.degraded or other.degraded
        self.dataset_size = max(self.dataset_size, other.dataset_size)


@dataclass
class IndexStats:
    """Index construction statistics and footprint (Figure 8 in the paper)."""

    method: str = ""
    total_nodes: int = 0
    leaf_nodes: int = 0
    memory_bytes: int = 0
    disk_bytes: int = 0
    build_cpu_seconds: float = 0.0
    build_io_seconds: float = 0.0
    sequential_pages: int = 0
    random_accesses: int = 0
    #: fill factor (fraction of capacity used) per leaf, for the fill-factor boxplots.
    leaf_fill_factors: list[float] = field(default_factory=list)
    #: depth of every leaf, for the balance analysis.
    leaf_depths: list[int] = field(default_factory=list)

    @property
    def build_seconds(self) -> float:
        return self.build_cpu_seconds + self.build_io_seconds

    @property
    def median_fill_factor(self) -> float:
        if not self.leaf_fill_factors:
            return 0.0
        ordered = sorted(self.leaf_fill_factors)
        mid = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return float(ordered[mid])
        return float((ordered[mid - 1] + ordered[mid]) / 2.0)

    @property
    def max_leaf_depth(self) -> int:
        return max(self.leaf_depths) if self.leaf_depths else 0


def aggregate_query_stats(stats: list[QueryStats]) -> QueryStats:
    """Sum a list of per-query stats into one aggregate (dataset size is kept)."""
    total = QueryStats()
    for entry in stats:
        total.merge(entry)
    if stats:
        total.dataset_size = stats[0].dataset_size
    return total
