"""Core substrate: series containers, distances, storage simulation, engine."""

from .answers import KnnAnswerSet, Neighbor, RangeAnswerSet
from .backends import (
    BACKEND_KINDS,
    MemoryBackend,
    MmapBackend,
    StorageBackend,
    resolve_backend,
)
from .buffer import BufferPool, BufferStats
from .distance import (
    dynamic_time_warping,
    early_abandon_reordered,
    early_abandon_squared,
    euclidean,
    reorder_by_query,
    squared_euclidean,
    squared_euclidean_batch,
)
from .engine import Recommendation, SimilaritySearchEngine, recommend_method
from .persistence import dataset_fingerprint, load_method, save_method
from .queries import KnnQuery, MatchingAccuracy, QueryWorkload, RangeQuery
from .registry import METHOD_NAMES, available_methods, create_method, register_method
from .series import (
    SERIES_DTYPE,
    Dataset,
    SeriesFileWriter,
    is_znormalized,
    write_series_file,
    znormalize,
)
from .soa import GrowableArray
from .stats import AccessCounter, IndexStats, QueryStats, aggregate_query_stats
from .storage import DEFAULT_PAGE_BYTES, SeriesStore

__all__ = [
    "KnnAnswerSet",
    "Neighbor",
    "RangeAnswerSet",
    "BufferPool",
    "BufferStats",
    "euclidean",
    "squared_euclidean",
    "squared_euclidean_batch",
    "early_abandon_squared",
    "early_abandon_reordered",
    "reorder_by_query",
    "dynamic_time_warping",
    "SimilaritySearchEngine",
    "Recommendation",
    "recommend_method",
    "save_method",
    "load_method",
    "dataset_fingerprint",
    "KnnQuery",
    "RangeQuery",
    "QueryWorkload",
    "MatchingAccuracy",
    "METHOD_NAMES",
    "available_methods",
    "create_method",
    "register_method",
    "Dataset",
    "SERIES_DTYPE",
    "SeriesFileWriter",
    "write_series_file",
    "StorageBackend",
    "MemoryBackend",
    "MmapBackend",
    "resolve_backend",
    "BACKEND_KINDS",
    "GrowableArray",
    "znormalize",
    "is_znormalized",
    "AccessCounter",
    "QueryStats",
    "IndexStats",
    "aggregate_query_stats",
    "SeriesStore",
    "DEFAULT_PAGE_BYTES",
]
