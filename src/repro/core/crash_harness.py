"""Subprocess crash harness: SIGKILL a live ingest and audit what survives.

The durability contract of the growable store is process-level, so it can only
be tested process-level: a child process runs ``python -m repro ingest``
against a store directory with a seeded fault plan that SIGKILLs it at a
chosen crash point (mid-WAL-write, mid-checkpoint, before the WAL truncate,
...).  The parent reads the child's flushed ``acked N`` lines — each printed
only after the WAL fsync — then reopens the store and audits the recovery:

- **acked rows are durable**: every row the child acknowledged is present;
- **no fabricated rows**: anything beyond the last ack is at most the one
  record that was in flight, lands on a record boundary, and is bit-identical
  to what the child was sending (both sides regenerate the same seeded
  random-walk matrix, so equality is exact, not statistical);
- **the store stays usable**: the survivor can keep ingesting, checkpoint,
  and pass a full segment-checksum verification.

``lie_fsync`` models a device that drops unsynced writes: the child's WAL
skips its fsyncs, so the SIGKILL produces genuinely torn tails that recovery
must truncate (never raise through).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .faults import CRASH_POINTS
from .growable import GrowableBackend

__all__ = ["CrashOutcome", "ingest_child_argv", "run_crash_cell"]

_ACK_PREFIX = "acked "


@dataclass
class CrashOutcome:
    """What one kill-and-recover cell observed and concluded."""

    crash_point: str
    seed: int
    killed: bool  #: the child died by SIGKILL (the crash point actually fired)
    acked_rows: int  #: highest ``acked N`` the child printed before dying
    recovered_rows: int  #: rows visible after reopening the store
    sent_rows: int  #: rows the child would have ingested uninterrupted
    torn_bytes: int  #: WAL bytes recovery truncated as a torn tail
    report: dict = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> dict:
        return {
            "crash_point": self.crash_point,
            "seed": self.seed,
            "killed": self.killed,
            "acked": self.acked_rows,
            "recovered": self.recovered_rows,
            "sent": self.sent_rows,
            "torn_bytes": self.torn_bytes,
            "ok": self.ok,
            "failures": list(self.failures),
        }


def ingest_child_argv(
    store: Path,
    *,
    count: int,
    length: int,
    seed: int,
    batch_rows: int,
    checkpoint_every: int = 0,
    fault_spec: str = "",
) -> list[str]:
    """The ``python -m repro ingest`` command line for a harness child."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "ingest",
        "--store",
        str(store),
        "--count",
        str(count),
        "--length",
        str(length),
        "--seed",
        str(seed),
        "--batch-rows",
        str(batch_rows),
    ]
    if checkpoint_every:
        argv += ["--checkpoint-every", str(checkpoint_every)]
    if fault_spec:
        argv += ["--fault-plan", fault_spec]
    return argv


def _child_env() -> dict:
    """The child's environment, with this library importable."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    # A stray ambient plan would stack a second fault layer under the child.
    env.pop("REPRO_FAULT_PLAN", None)
    return env


def _last_ack(stdout: str) -> int:
    acked = 0
    for line in stdout.splitlines():
        if line.startswith(_ACK_PREFIX):
            acked = int(line[len(_ACK_PREFIX) :])
    return acked


def run_crash_cell(
    root: str | Path,
    *,
    crash_point: str,
    crash_hit: int = 1,
    seed: int = 2018,
    count: int = 256,
    length: int = 32,
    batch_rows: int = 32,
    checkpoint_every: int = 0,
    lie_fsync: bool = False,
    timeout: float = 120.0,
) -> CrashOutcome:
    """Kill one seeded ingest at ``crash_point`` and audit the recovery.

    ``root`` must not already hold a store — each cell owns a fresh
    directory so the acked/recovered accounting starts from zero.  Returns a
    :class:`CrashOutcome`; ``outcome.ok`` is the verdict and
    ``outcome.failures`` names every violated guarantee.
    """
    if crash_point not in CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {crash_point!r} (expected one of {CRASH_POINTS})"
        )
    root = Path(root)
    fault_spec = f"crash={crash_point}:{crash_hit}"
    if lie_fsync:
        fault_spec += ",lie_fsync=1"
    argv = ingest_child_argv(
        root,
        count=count,
        length=length,
        seed=seed,
        batch_rows=batch_rows,
        checkpoint_every=checkpoint_every,
        fault_spec=fault_spec,
    )
    proc = subprocess.run(
        argv, capture_output=True, text=True, timeout=timeout, env=_child_env()
    )
    killed = proc.returncode == -signal.SIGKILL
    acked = _last_ack(proc.stdout)

    outcome = CrashOutcome(
        crash_point=crash_point,
        seed=seed,
        killed=killed,
        acked_rows=acked,
        recovered_rows=0,
        sent_rows=count,
        torn_bytes=0,
    )
    if not killed and proc.returncode != 0:
        outcome.failures.append(
            f"child exited {proc.returncode} without being killed: "
            f"{proc.stderr.strip()[-500:]}"
        )
        return outcome

    try:
        backend = GrowableBackend(root)
    # repro-lint: disable=no-bare-except -- sanctioned fault-capture seam:
    # the audit records the exception as the failure verdict; the harness
    # itself must survive to report it.
    except Exception as exc:  # CorruptionError here is itself the failure
        outcome.failures.append(f"reopen after crash raised {exc!r}")
        return outcome
    try:
        report = backend.recovery
        outcome.report = report.describe()
        outcome.torn_bytes = report.torn_bytes
        recovered = backend.count
        outcome.recovered_rows = recovered

        if recovered < acked and not lie_fsync:
            # With honest fsyncs every acked row must survive.  Under
            # lie_fsync the device drops unsynced writes, so acked rows CAN
            # be lost by design — those cells assert prefix-consistency
            # (boundary, bit-exactness, usability) instead of durability.
            outcome.failures.append(
                f"ACKED ROW LOSS: child acked {acked} rows, only "
                f"{recovered} survived recovery"
            )
        if recovered > count:
            outcome.failures.append(
                f"recovered {recovered} rows but the child only ever sent "
                f"{count}"
            )
        if recovered - acked > batch_rows:
            outcome.failures.append(
                f"recovered {recovered} rows with only {acked} acked: more "
                f"than one in-flight record ({batch_rows} rows) materialized"
            )
        if recovered % batch_rows != 0 and recovered != count:
            outcome.failures.append(
                f"recovered {recovered} rows, which is not a record boundary "
                f"(batch {batch_rows}): a torn record became visible"
            )

        # Bit-exactness: the child ingested a prefix of this exact matrix.
        expected = random_walk_matrix(count, length, seed)
        if recovered and not np.array_equal(
            np.asarray(backend.values[:recovered]), expected[:recovered]
        ):
            outcome.failures.append(
                "recovered rows are not bit-identical to the acked prefix"
            )

        # Survivor usability: keep ingesting where the crash left off,
        # checkpoint, and verify every sealed byte.
        if recovered < count:
            backend.extend(expected[recovered:count])
        backend.checkpoint()
        verified = backend.verify_segments()
        if verified != count:
            outcome.failures.append(
                f"post-recovery verify covered {verified} rows, expected {count}"
            )
        if not np.array_equal(np.asarray(backend.values), expected):
            outcome.failures.append(
                "store contents diverged after post-recovery ingest"
            )
    finally:
        backend.close()
    return outcome


def random_walk_matrix(count: int, length: int, seed: int) -> np.ndarray:
    """The exact matrix a harness child ingests (shared so both sides agree)."""
    from ..workloads.generators import random_walk

    return random_walk(count, length, seed=seed)
