"""Thread-level parallel execution: worker pools, shared radii, batch dispatch.

Every hot path in the library bottoms out in NumPy kernels that release the
GIL (distance tiles, lower-bound batches, FFTs, lexsorts), so thread pools are
the cheapest way to use every core: no serialization, no copies of the
dataset, and the simulated-storage accounting stays in process.  This module
is the single home for that machinery:

* :func:`resolve_workers` — one rule for turning a ``workers=`` argument (or
  the ``REPRO_WORKERS`` environment variable) into a worker count;
* :func:`parallel_map` — an ordered, exception-propagating thread map used by
  the sharded index wrapper and the batch dispatcher;
* :func:`chunk_slices` — deterministic contiguous partitioning shared by the
  shard planner and the inter-query batch chunker;
* :class:`SharedRadius` — the lock-guarded monotone best-so-far threshold that
  concurrent shard searches read to tighten their pruning;
* :func:`parallel_batch_search` — inter-query parallelism over any built
  :class:`~repro.indexes.base.SearchMethod`.

Thread-safety story (applies to every worker spawned here): workers never
mutate shared accounting state.  Each worker gets a *forked* store
(:meth:`~repro.core.storage.SeriesStore.fork` — same dataset, fresh
:class:`~repro.core.stats.AccessCounter`), accumulates privately, and the
coordinating thread merges the counters with ``AccessCounter.merge`` after
joining.  Results are always returned in submission order; scheduling never
reorders or changes answers (chunking a batch does change the GEMM tile
shape seen by the flat/MASS vectorized kernels, whose distances may move in
the final ulp — the caveat their batch path already documents).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait as futures_wait
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_WORKERS_ENV",
    "default_workers",
    "resolve_workers",
    "chunk_slices",
    "parallel_map",
    "TaskOutcome",
    "parallel_map_outcomes",
    "SharedRadius",
    "parallel_batch_search",
]

#: environment variable overriding the default worker count.
DEFAULT_WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Default worker count: ``REPRO_WORKERS`` if set, else the CPU count."""
    override = os.environ.get(DEFAULT_WORKERS_ENV, "").strip()
    if override:
        try:
            workers = int(override)
        except ValueError as exc:
            raise ValueError(
                f"{DEFAULT_WORKERS_ENV} must be an integer, got {override!r}"
            ) from exc
        if workers <= 0:
            raise ValueError(
                f"{DEFAULT_WORKERS_ENV} must be positive, got {workers} "
                "(use 1 to force sequential execution)"
            )
        return workers
    return os.cpu_count() or 1


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a ``workers=`` argument: ``None`` means the environment default."""
    if workers is None:
        return max(1, default_workers())
    count = int(workers)
    if count <= 0:
        raise ValueError("workers must be a positive integer (or None for the default)")
    return count


def chunk_slices(total: int, parts: int) -> list[slice]:
    """Split ``range(total)`` into ``parts`` contiguous, nearly equal slices.

    The first ``total % parts`` slices get one extra element, so the layout is
    a pure function of ``(total, parts)`` — shard boundaries and batch chunks
    are reproducible across runs and worker counts.
    """
    if total <= 0:
        return []
    parts = max(1, min(int(parts), total))
    base, extra = divmod(total, parts)
    slices = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        slices.append(slice(start, stop))
        start = stop
    return slices


def parallel_map(
    fn: Callable, items: Iterable, workers: int, pool: ThreadPoolExecutor | None = None
) -> list:
    """Apply ``fn`` to every item on a thread pool, preserving item order.

    With ``workers <= 1`` (or one item) this is a plain loop — zero threading
    overhead and an identical code path, which is what makes ``workers=1`` the
    exact sequential baseline.  Exceptions raised by any worker propagate to
    the caller, like the built-in ``map``.

    ``pool`` reuses a caller-owned executor (hot serving paths keep one per
    sharded method so queries do not pay thread spawn/join per call); without
    one, a transient executor is created and torn down around the map.
    """
    work = list(items)
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    if pool is not None:
        return list(pool.map(fn, work))
    with ThreadPoolExecutor(max_workers=min(int(workers), len(work))) as transient:
        return list(transient.map(fn, work))


@dataclass
class TaskOutcome:
    """What happened to one task of a fault-tolerant fan-out.

    Exactly one of three states: ``value`` holds the task's return value on
    success, ``error`` the exception it raised, and ``timed_out`` marks tasks
    that never completed before the fan-out's deadline.
    """

    value: object = None
    error: BaseException | None = None
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out


def parallel_map_outcomes(
    fn: Callable,
    items: Iterable,
    workers: int,
    pool: ThreadPoolExecutor | None = None,
    deadline: float | None = None,
) -> list[TaskOutcome]:
    """Fault-tolerant :func:`parallel_map`: capture per-task outcomes in order.

    Unlike :func:`parallel_map`, a task raising does not abort the fan-out —
    its exception is captured in its :class:`TaskOutcome` and every other task
    still runs, which is what lets the sharded executor fail or degrade one
    shard without losing the others' work.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp: tasks not
    finished by then are reported ``timed_out`` (queued tasks are cancelled;
    already-running tasks cannot be interrupted mid-kernel and are left to
    finish in the background, their late results discarded).  Outcomes are a
    consistent snapshot taken at the deadline — a task finishing afterwards
    never mutates what the caller sees.  With ``workers <= 1`` the tasks run
    sequentially and the deadline is checked between tasks.
    """
    work = list(items)
    if workers <= 1 or len(work) <= 1:
        outcomes = []
        for item in work:
            if deadline is not None and time.monotonic() >= deadline and outcomes:
                outcomes.append(TaskOutcome(timed_out=True))
                continue
            try:
                outcomes.append(TaskOutcome(value=fn(item)))
            except Exception as exc:
                outcomes.append(TaskOutcome(error=exc))
        return outcomes

    def run(item) -> TaskOutcome:
        try:
            return TaskOutcome(value=fn(item))
        except Exception as exc:
            return TaskOutcome(error=exc)

    own: ThreadPoolExecutor | None = None
    executor = pool
    if executor is None:
        own = executor = ThreadPoolExecutor(max_workers=min(int(workers), len(work)))
    try:
        futures = [executor.submit(run, item) for item in work]
        if deadline is None:
            futures_wait(futures)
        else:
            futures_wait(futures, timeout=max(0.0, deadline - time.monotonic()))
            for future in futures:
                future.cancel()
    finally:
        if own is not None:
            # A deadline must not block on stragglers; without one every
            # future is already done and shutdown returns immediately.
            own.shutdown(wait=deadline is None, cancel_futures=True)
    return [
        future.result() if future.done() and not future.cancelled() else TaskOutcome(timed_out=True)
        for future in futures
    ]


class SharedRadius:
    """A monotonically tightening best-so-far squared radius shared by workers.

    Concurrent shard searches publish their local pruning threshold here and
    read the global minimum to prune against answers found by *other* shards.
    Updates are lock-guarded and monotone (the value only ever decreases), so
    a stale read is always a *looser* threshold — never incorrect, exactness
    does not depend on the interleaving.  Reads are a single attribute load
    (atomic under the GIL) so the hot path takes no lock.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: float = float("inf")) -> None:
        self._lock = threading.Lock()
        self._value = float(value)

    @property
    def value(self) -> float:
        """The current global threshold (squared distance)."""
        return self._value

    def tighten(self, value: float) -> bool:
        """Lower the shared threshold to ``value`` if it improves the current one."""
        if not value < self._value:  # cheap lock-free rejection of stale updates
            return False
        with self._lock:
            if value < self._value:
                self._value = value
                return True
        return False


def parallel_batch_search(method, queries, k: int = 1, workers: int | None = None) -> list:
    """Answer a query batch with inter-query parallelism over ``method``.

    The batch is split into contiguous chunks (one per worker) and each chunk
    runs ``method.knn_exact_batch`` on its own thread with a *forked* store,
    so access accounting is worker-local; the forks are merged into the
    method's counter after the join.  Results come back in query order and
    match the sequential batch call — byte-identically for per-query-loop
    batch paths, to the final ulp for the flat/MASS GEMM kernels (tile-shape
    sensitivity, see :mod:`repro.indexes.sharded`).  Composes with the
    sharded wrapper: each chunk then fans out across shards (inter-query x
    intra-query parallelism).
    """
    import numpy as np

    count = resolve_workers(workers)
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    total = qs.shape[0]
    if count <= 1 or total <= 1:
        return method.knn_exact_batch(qs, k=k)
    slices = chunk_slices(total, count)

    def run_chunk(chunk: slice):
        reader = method.store.fork()
        with method.execution_context(store=reader):
            results = method.knn_exact_batch(qs[chunk], k=k)
        return results, reader.counter

    outputs = parallel_map(run_chunk, slices, count)
    results: list = []
    counter = method.store.counter
    for chunk_results, chunk_counter in outputs:
        counter.merge(chunk_counter)
        results.extend(chunk_results)
    return results
