"""Parallel execution backends: worker pools, shared radii, batch dispatch.

Every hot path in the library bottoms out in NumPy kernels that release the
GIL (distance tiles, lower-bound batches, FFTs, lexsorts), so thread pools are
the cheapest way to use every core for those: no serialization, no copies of
the dataset, and the simulated-storage accounting stays in process.  Python-
heavy tree descent (iSAX2+/DSTree/SFA-trie node routing) does *not* scale on
threads — the GIL serializes it — which is what the process executor exists
for.  This module is the single home for that machinery:

* :func:`resolve_workers` — one rule for turning a ``workers=`` argument (or
  the ``REPRO_WORKERS`` environment variable) into a worker count;
* :func:`parallel_map` — an ordered, exception-propagating thread map used by
  the sharded index wrapper and the batch dispatcher;
* :func:`chunk_slices` — deterministic contiguous partitioning shared by the
  shard planner and the inter-query batch chunker;
* :class:`SharedRadius` — the lock-guarded monotone best-so-far threshold that
  concurrent shard searches read to tighten their pruning;
* :class:`Executor` / :class:`ThreadExecutor` / :class:`ProcessExecutor` —
  the pluggable execution seam the sharded wrapper fans out on, selected by
  ``executor=`` arguments or the ``REPRO_EXECUTOR`` environment variable;
* :class:`ProcessSharedRadius` — the shared-memory counterpart of
  :class:`SharedRadius` for cross-process best-so-far pruning;
* :func:`parallel_batch_search` — inter-query parallelism over any built
  :class:`~repro.indexes.base.SearchMethod`.

Thread-safety story (applies to every worker spawned here): workers never
mutate shared accounting state.  Each worker gets a *forked* store
(:meth:`~repro.core.storage.SeriesStore.fork` — same dataset, fresh
:class:`~repro.core.stats.AccessCounter`), accumulates privately, and the
coordinating thread merges the counters with ``AccessCounter.merge`` after
joining.  Process workers follow the same protocol across a pickle boundary:
task results carry the worker-local counter deltas back for post-join
merging.  Results are always returned in submission order; scheduling never
reorders or changes answers (chunking a batch does change the GEMM tile
shape seen by the flat/MASS vectorized kernels, whose distances may move in
the final ulp — the caveat their batch path already documents).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_WORKERS_ENV",
    "DEFAULT_EXECUTOR_ENV",
    "DEFAULT_START_METHOD_ENV",
    "EXECUTOR_KINDS",
    "default_workers",
    "resolve_workers",
    "default_executor_kind",
    "resolve_executor",
    "shared_process_executor",
    "shutdown_shared_executors",
    "chunk_slices",
    "parallel_map",
    "TaskOutcome",
    "parallel_map_outcomes",
    "Executor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedRadius",
    "ProcessSharedRadius",
    "parallel_batch_search",
]

#: environment variable overriding the default worker count.
DEFAULT_WORKERS_ENV = "REPRO_WORKERS"

#: environment variable selecting the default executor kind.
DEFAULT_EXECUTOR_ENV = "REPRO_EXECUTOR"

#: environment variable overriding the multiprocessing start method.
DEFAULT_START_METHOD_ENV = "REPRO_MP_START"

#: recognised ``executor=`` / ``REPRO_EXECUTOR`` spellings.
EXECUTOR_KINDS = ("thread", "process")


def default_workers() -> int:
    """Default worker count: ``REPRO_WORKERS`` if set, else the CPU count."""
    override = os.environ.get(DEFAULT_WORKERS_ENV, "").strip()
    if override:
        try:
            workers = int(override)
        except ValueError as exc:
            raise ValueError(
                f"{DEFAULT_WORKERS_ENV} must be an integer, got {override!r}"
            ) from exc
        if workers <= 0:
            raise ValueError(
                f"{DEFAULT_WORKERS_ENV} must be positive, got {workers} "
                "(use 1 to force sequential execution)"
            )
        return workers
    return os.cpu_count() or 1


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a ``workers=`` argument: ``None`` means the environment default."""
    if workers is None:
        return max(1, default_workers())
    count = int(workers)
    if count <= 0:
        raise ValueError("workers must be a positive integer (or None for the default)")
    return count


def chunk_slices(total: int, parts: int) -> list[slice]:
    """Split ``range(total)`` into ``parts`` contiguous, nearly equal slices.

    The first ``total % parts`` slices get one extra element, so the layout is
    a pure function of ``(total, parts)`` — shard boundaries and batch chunks
    are reproducible across runs and worker counts.
    """
    if total <= 0:
        return []
    parts = max(1, min(int(parts), total))
    base, extra = divmod(total, parts)
    slices = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        slices.append(slice(start, stop))
        start = stop
    return slices


def parallel_map(
    fn: Callable, items: Iterable, workers: int, pool: ThreadPoolExecutor | None = None
) -> list:
    """Apply ``fn`` to every item on a thread pool, preserving item order.

    With ``workers <= 1`` (or one item) this is a plain loop — zero threading
    overhead and an identical code path, which is what makes ``workers=1`` the
    exact sequential baseline.  Exceptions raised by any worker propagate to
    the caller, like the built-in ``map``.

    ``pool`` reuses a caller-owned executor (hot serving paths keep one per
    sharded method so queries do not pay thread spawn/join per call); without
    one, a transient executor is created and torn down around the map.
    """
    work = list(items)
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    if pool is not None:
        return list(pool.map(fn, work))
    with ThreadPoolExecutor(max_workers=min(int(workers), len(work))) as transient:
        return list(transient.map(fn, work))


@dataclass
class TaskOutcome:
    """What happened to one task of a fault-tolerant fan-out.

    Exactly one of three states: ``value`` holds the task's return value on
    success, ``error`` the exception it raised, and ``timed_out`` marks tasks
    that never completed before the fan-out's deadline.
    """

    value: object = None
    error: BaseException | None = None
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out


def parallel_map_outcomes(
    fn: Callable,
    items: Iterable,
    workers: int,
    pool: ThreadPoolExecutor | None = None,
    deadline: float | None = None,
) -> list[TaskOutcome]:
    """Fault-tolerant :func:`parallel_map`: capture per-task outcomes in order.

    Unlike :func:`parallel_map`, a task raising does not abort the fan-out —
    its exception is captured in its :class:`TaskOutcome` and every other task
    still runs, which is what lets the sharded executor fail or degrade one
    shard without losing the others' work.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp: tasks not
    finished by then are reported ``timed_out`` (queued tasks are cancelled;
    already-running tasks cannot be interrupted mid-kernel and are left to
    finish in the background, their late results discarded).  Outcomes are a
    consistent snapshot taken at the deadline — a task finishing afterwards
    never mutates what the caller sees.  With ``workers <= 1`` the tasks run
    sequentially and the deadline is checked between tasks.
    """
    work = list(items)
    if workers <= 1 or len(work) <= 1:
        outcomes = []
        for item in work:
            if deadline is not None and time.monotonic() >= deadline and outcomes:
                outcomes.append(TaskOutcome(timed_out=True))
                continue
            try:
                outcomes.append(TaskOutcome(value=fn(item)))
            # repro-lint: disable=no-bare-except -- sanctioned fault-capture
            # seam: the exception rides back typed in TaskOutcome.error for
            # the caller to classify (re-raise, retry, or degrade).
            except Exception as exc:
                outcomes.append(TaskOutcome(error=exc))
        return outcomes

    def run(item) -> TaskOutcome:
        try:
            return TaskOutcome(value=fn(item))
        # repro-lint: disable=no-bare-except -- sanctioned fault-capture
        # seam: same TaskOutcome.error contract as the sequential path.
        except Exception as exc:
            return TaskOutcome(error=exc)

    own: ThreadPoolExecutor | None = None
    executor = pool
    if executor is None:
        own = executor = ThreadPoolExecutor(max_workers=min(int(workers), len(work)))
    try:
        futures = [executor.submit(run, item) for item in work]
        if deadline is None:
            futures_wait(futures)
        else:
            futures_wait(futures, timeout=max(0.0, deadline - time.monotonic()))
            for future in futures:
                future.cancel()
    finally:
        if own is not None:
            # A deadline must not block on stragglers; without one every
            # future is already done and shutdown returns immediately.
            own.shutdown(wait=deadline is None, cancel_futures=True)
    return [
        future.result() if future.done() and not future.cancelled() else TaskOutcome(timed_out=True)
        for future in futures
    ]


class SharedRadius:
    """A monotonically tightening best-so-far squared radius shared by workers.

    Concurrent shard searches publish their local pruning threshold here and
    read the global minimum to prune against answers found by *other* shards.
    Updates are lock-guarded and monotone (the value only ever decreases), so
    a stale read is always a *looser* threshold — never incorrect, exactness
    does not depend on the interleaving.  Reads are a single attribute load
    (atomic under the GIL) so the hot path takes no lock.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: float = math.inf) -> None:
        self._lock = threading.Lock()
        self._value = float(value)

    @property
    def value(self) -> float:
        """The current global threshold (squared distance)."""
        return self._value

    def tighten(self, value: float) -> bool:
        """Lower the shared threshold to ``value`` if it improves the current one."""
        if not value < self._value:  # cheap lock-free rejection of stale updates
            return False
        with self._lock:
            if value < self._value:
                self._value = value
                return True
        return False


# --------------------------------------------------------------------------- #
# Executor seam
# --------------------------------------------------------------------------- #

#: worker-process view of the coordinator's shared radius table, installed by
#: the pool initializer (shared ``multiprocessing`` synchronized objects can
#: only travel to children at spawn time, never inside task arguments).
_WORKER_RADIUS_TABLE = None


def _process_worker_init(radius_table, sys_paths: list[str]) -> None:
    """Pool initializer run once in each spawned worker process.

    Stashes the shared radius table in a module global and replays the
    parent's ``sys.path`` so spawned children resolve ``repro`` regardless of
    how the parent acquired it (``PYTHONPATH``, ``sys.path`` edits, editable
    installs).
    """
    global _WORKER_RADIUS_TABLE
    _WORKER_RADIUS_TABLE = radius_table
    for path in reversed(sys_paths):
        if path and path not in sys.path:
            sys.path.insert(0, path)


class ProcessSharedRadius:
    """Shared-memory counterpart of :class:`SharedRadius` for process workers.

    The coordinator owns a ``multiprocessing`` double array (one slot per
    in-flight query) that reaches every worker through the pool initializer;
    instances of this class are the picklable per-query handle — they carry
    only a slot index, and resolve the table through the worker-side module
    global.  Same monotone-tighten API and the same staleness argument as the
    thread variant: a stale read is a looser threshold, never a wrong one.
    Reads are a single aligned 8-byte load (atomic on every supported
    platform), so the pruning hot path takes no cross-process lock; tightening
    takes the table's lock and re-checks under it.
    """

    __slots__ = ("_index",)

    def __init__(self, index: int) -> None:
        self._index = int(index)

    @property
    def value(self) -> float:
        """The current global threshold (squared distance)."""
        table = _WORKER_RADIUS_TABLE
        if table is None:  # outside a pool worker: no sharing, prune locally
            return float("inf")
        return table.get_obj()[self._index]

    def tighten(self, value: float) -> bool:
        """Lower the shared threshold to ``value`` if it improves the current one."""
        table = _WORKER_RADIUS_TABLE
        if table is None:
            return False
        cells = table.get_obj()
        if not value < cells[self._index]:  # cheap lock-free rejection
            return False
        with table.get_lock():
            if value < cells[self._index]:
                cells[self._index] = value
                return True
        return False


class Executor:
    """Protocol for the sharded wrapper's fan-out backend.

    Implementations provide an ordered, exception-propagating :meth:`map`, a
    fault-capturing :meth:`map_outcomes` (absolute monotonic ``deadline``
    semantics identical to :func:`parallel_map_outcomes`), and the radius-slot
    API that backs cross-worker best-so-far pruning.  The thread executor has
    no slot table — callers get ``None`` slots and fall back to in-process
    :class:`SharedRadius` objects.
    """

    kind: str = ""

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        #: registry-shared executors are reused across methods and must not be
        #: closed by any one of them; ``shutdown_shared_executors`` owns those.
        self.shared = False

    def map(self, fn: Callable, items: Iterable) -> list:
        raise NotImplementedError

    def map_outcomes(
        self, fn: Callable, items: Iterable, deadline: float | None = None
    ) -> list[TaskOutcome]:
        raise NotImplementedError

    def acquire_radius_slots(self, count: int) -> list[int | None]:
        """Reserve ``count`` shared-radius slots; ``None`` entries mean no sharing."""
        return [None] * count

    def release_radius_slots(self, slots: list[int | None]) -> None:
        """Return previously acquired slots to the pool."""

    def close(self) -> None:
        """Release pooled resources; the executor lazily recreates them on reuse."""


class ThreadExecutor(Executor):
    """The default executor: a lazily created, persistent thread pool.

    Exactly the previous in-process behavior of the sharded wrapper — shared
    memory, zero serialization, NumPy kernels scale, Python-level descent does
    not.  ``workers <= 1`` (or a single task) degenerates to a plain loop on
    the calling thread, which is what makes one worker the exact sequential
    baseline.
    """

    kind = "thread"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        if self.workers <= 1:
            return None
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self.workers, thread_name_prefix="repro-shard"
                    )
        return pool

    def map(self, fn: Callable, items: Iterable) -> list:
        work = list(items)
        pool = self._ensure_pool() if len(work) > 1 else None
        return parallel_map(fn, work, self.workers, pool=pool)

    def map_outcomes(
        self, fn: Callable, items: Iterable, deadline: float | None = None
    ) -> list[TaskOutcome]:
        work = list(items)
        pool = self._ensure_pool() if len(work) > 1 else None
        return parallel_map_outcomes(fn, work, self.workers, pool=pool, deadline=deadline)

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


class ProcessExecutor(Executor):
    """A persistent warm ``multiprocessing`` pool for GIL-free shard work.

    Tasks and results cross a pickle boundary, so callers ship *plans* (method
    name + params + backend path/slice — never raw data) and get counters back
    as deltas.  The pool uses the ``spawn`` start method by default
    (``REPRO_MP_START`` overrides): spawn is fork-safe in threaded parents and
    behaves identically on every platform, at the cost of a one-time interpreter
    + import startup per worker — which is why the pool is persistent and
    worker-side index caches make repeated queries cheap.

    Cross-process pruning uses a fixed table of shared-memory radius slots
    created *before* the pool and handed to workers via the pool initializer
    (``multiprocessing`` synchronized objects cannot ride task arguments).
    A SIGKILLed worker surfaces as :class:`BrokenProcessPool` on every
    in-flight future; those tasks are reported as failed outcomes and the
    broken pool is discarded so the next dispatch transparently spawns a
    fresh one (the radius table survives — it belongs to the executor, not
    the pool).
    """

    kind = "process"

    #: default number of concurrently shareable query radii; overflow queries
    #: silently fall back to local-only pruning (same answers, more work).
    RADIUS_SLOTS = 512

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        radius_slots: int | None = None,
    ) -> None:
        super().__init__(workers)
        method = (
            start_method
            or os.environ.get(DEFAULT_START_METHOD_ENV, "").strip()
            or "spawn"
        )
        self.start_method = method
        self._ctx = multiprocessing.get_context(method)
        slots = int(radius_slots if radius_slots is not None else self.RADIUS_SLOTS)
        self._radius_table = self._ctx.Array("d", slots)
        self._free_slots = list(range(slots))
        self._slot_lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- pool lifecycle ----------------------------------------------------- #

    def _ensure_pool(self) -> ProcessPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        mp_context=self._ctx,
                        initializer=_process_worker_init,
                        initargs=(self._radius_table, [p for p in sys.path if p]),
                    )
        return pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        # Unlike discarding a *broken* pool (whose workers are already dead),
        # a clean close waits: a worker still mid-spawn would otherwise try to
        # attach the radius table's semaphore after the parent unlinked it.
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- dispatch ----------------------------------------------------------- #

    def map(self, fn: Callable, items: Iterable) -> list:
        results = []
        for outcome in self.map_outcomes(fn, items):
            if outcome.error is not None:
                raise outcome.error
            if outcome.timed_out:
                raise TimeoutError("process task did not complete")
            results.append(outcome.value)
        return results

    def map_outcomes(
        self, fn: Callable, items: Iterable, deadline: float | None = None
    ) -> list[TaskOutcome]:
        work = list(items)
        if not work:
            return []
        pool = self._ensure_pool()
        try:
            futures = [pool.submit(fn, item) for item in work]
        except BrokenProcessPool:
            # The pool died between dispatches (e.g. a worker was killed while
            # idle); replace it once and resubmit — a second break is reported
            # through the futures below like any mid-flight loss.
            self._discard_pool()
            pool = self._ensure_pool()
            futures = [pool.submit(fn, item) for item in work]
        if deadline is None:
            futures_wait(futures)
        else:
            futures_wait(futures, timeout=max(0.0, deadline - time.monotonic()))
            for future in futures:
                future.cancel()
        outcomes: list[TaskOutcome] = []
        broken = False
        for future in futures:
            if not future.done() or future.cancelled():
                outcomes.append(TaskOutcome(timed_out=True))
                continue
            error = future.exception()
            if error is None:
                outcomes.append(TaskOutcome(value=future.result()))
            else:
                broken = broken or isinstance(error, BrokenProcessPool)
                outcomes.append(TaskOutcome(error=error))
        if broken:
            self._discard_pool()
        return outcomes

    # -- shared radius slots ------------------------------------------------ #

    def acquire_radius_slots(self, count: int) -> list[int | None]:
        taken: list[int | None] = []
        with self._slot_lock:
            while len(taken) < count and self._free_slots:
                taken.append(self._free_slots.pop())
        if taken:
            with self._radius_table.get_lock():
                cells = self._radius_table.get_obj()
                for index in taken:
                    cells[index] = float("inf")
        while len(taken) < count:  # table exhausted: local-only pruning
            taken.append(None)
        return taken

    def release_radius_slots(self, slots: list[int | None]) -> None:
        live = [slot for slot in slots if slot is not None]
        if not live:
            return
        with self._slot_lock:
            self._free_slots.extend(live)

    def radius_value(self, slot: int) -> float:
        """Coordinator-side read of one slot (tests and merge diagnostics)."""
        return self._radius_table.get_obj()[slot]


def default_executor_kind() -> str:
    """Default executor kind: ``REPRO_EXECUTOR`` if set, else ``"thread"``."""
    kind = os.environ.get(DEFAULT_EXECUTOR_ENV, "").strip().lower()
    if not kind:
        return "thread"
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"{DEFAULT_EXECUTOR_ENV} must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    return kind


#: process executors shared across methods, keyed by (workers, start method).
#: Spawning a pool costs a fresh interpreter + imports per worker, so every
#: method asking for the same shape reuses one warm pool (and its worker-side
#: index caches) instead of respawning.
_SHARED_PROCESS_EXECUTORS: dict[tuple[int, str], ProcessExecutor] = {}
_SHARED_EXECUTORS_LOCK = threading.Lock()


def shared_process_executor(
    workers: int | None = None, start_method: str | None = None
) -> ProcessExecutor:
    """A process executor shared by every caller with the same shape."""
    count = resolve_workers(workers)
    method = (
        start_method
        or os.environ.get(DEFAULT_START_METHOD_ENV, "").strip()
        or "spawn"
    )
    key = (count, method)
    with _SHARED_EXECUTORS_LOCK:
        executor = _SHARED_PROCESS_EXECUTORS.get(key)
        if executor is None:
            executor = ProcessExecutor(count, start_method=method)
            executor.shared = True
            _SHARED_PROCESS_EXECUTORS[key] = executor
    return executor


def shutdown_shared_executors() -> None:
    """Close every registry-shared process executor (benchmarks, test teardown)."""
    with _SHARED_EXECUTORS_LOCK:
        executors = list(_SHARED_PROCESS_EXECUTORS.values())
        _SHARED_PROCESS_EXECUTORS.clear()
    for executor in executors:
        executor.shared = False
        executor.close()


def resolve_executor(
    executor: "str | Executor | None" = None, workers: int | None = None
) -> Executor:
    """Resolve an ``executor=`` argument into an :class:`Executor` instance.

    Accepts an executor instance (returned as-is, caller-owned), a kind string
    (``"thread"`` / ``"process"``), or ``None`` — which defers to the
    ``REPRO_EXECUTOR`` environment variable and defaults to ``"thread"``.
    Process executors come from the shared registry so repeated resolutions
    reuse one warm pool per worker count.
    """
    if isinstance(executor, Executor):
        return executor
    kind = executor.strip().lower() if isinstance(executor, str) else None
    if kind is None:
        kind = default_executor_kind()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return shared_process_executor(workers)
    raise ValueError(
        f"unknown executor {executor!r} (expected one of {EXECUTOR_KINDS} or an Executor)"
    )


def parallel_batch_search(method, queries, k: int = 1, workers: int | None = None) -> list:
    """Answer a query batch with inter-query parallelism over ``method``.

    The batch is split into contiguous chunks (one per worker) and each chunk
    runs ``method.knn_exact_batch`` on its own thread with a *forked* store,
    so access accounting is worker-local; the forks are merged into the
    method's counter after the join.  Results come back in query order and
    match the sequential batch call — byte-identically for per-query-loop
    batch paths, to the final ulp for the flat/MASS GEMM kernels (tile-shape
    sensitivity, see :mod:`repro.indexes.sharded`).  Composes with the
    sharded wrapper: each chunk then fans out across shards (inter-query x
    intra-query parallelism).
    """
    import numpy as np

    count = resolve_workers(workers)
    qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    total = qs.shape[0]
    if count <= 1 or total <= 1:
        return method.knn_exact_batch(qs, k=k)
    slices = chunk_slices(total, count)

    def run_chunk(chunk: slice):
        reader = method.store.fork()
        with method.execution_context(store=reader):
            results = method.knn_exact_batch(qs[chunk], k=k)
        return results, reader.counter

    outputs = parallel_map(run_chunk, slices, count)
    results: list = []
    counter = method.store.counter
    for chunk_results, chunk_counter in outputs:
        counter.merge(chunk_counter)
        results.extend(chunk_results)
    return results
