"""Saving and loading built indexes.

Index construction is the expensive phase for most of the paper's methods, so a
library users would adopt needs a way to build once and reuse the structure
across sessions.  Built methods are serialized together with the fingerprint of
the dataset they were built on; loading verifies the fingerprint so a stale
index is never silently used against different data.

The format is Python pickle.  Pickle is appropriate here because indexes are
local artifacts produced and consumed by the same trusted user; never load
index files from untrusted sources.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .series import Dataset
from .storage import SeriesStore

__all__ = ["dataset_fingerprint", "save_method", "load_method", "IndexEnvelope"]

_FORMAT_VERSION = 1


def dataset_fingerprint(dataset: Dataset) -> str:
    """A stable fingerprint of a dataset's shape and contents.

    Hashes the array shape plus a deterministic sample of rows (first, last,
    and a strided middle selection), which is enough to detect both shape
    changes and content changes without hashing gigabytes.
    """
    digest = hashlib.sha256()
    digest.update(str(dataset.values.shape).encode())
    digest.update(str(dataset.values.dtype).encode())
    count = dataset.count
    sample_positions = sorted(set([0, count - 1] + list(range(0, count, max(1, count // 64)))))
    sample = np.ascontiguousarray(dataset.values[sample_positions])
    digest.update(sample.tobytes())
    return digest.hexdigest()


@dataclass
class IndexEnvelope:
    """What gets written to disk: the method plus provenance metadata."""

    format_version: int
    method_name: str
    dataset_name: str
    dataset_fingerprint: str
    method_state: bytes

    def summary(self) -> dict:
        return {
            "method": self.method_name,
            "dataset": self.dataset_name,
            "fingerprint": self.dataset_fingerprint[:12],
            "bytes": len(self.method_state),
        }


def save_method(method, path: str | Path) -> IndexEnvelope:
    """Serialize a built method to ``path`` and return the written envelope."""
    if not getattr(method, "is_built", False):
        raise ValueError("only built methods can be saved")
    dataset = method.store.dataset
    # The raw data is not stored inside the index file: the store is detached
    # before pickling and re-attached on load (the dataset travels separately).
    store = method.store
    method.store = None
    try:
        state = pickle.dumps(method, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        method.store = store
    envelope = IndexEnvelope(
        format_version=_FORMAT_VERSION,
        method_name=method.name,
        dataset_name=dataset.name,
        dataset_fingerprint=dataset_fingerprint(dataset),
        method_state=state,
    )
    with open(path, "wb") as handle:
        pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return envelope


def load_method(path: str | Path, dataset: Dataset, page_bytes: int | None = None):
    """Load a method saved with :func:`save_method` and re-attach it to ``dataset``.

    Raises ``ValueError`` when the file was produced by a different format
    version or the dataset does not match the fingerprint recorded at save
    time.
    """
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    if not isinstance(envelope, IndexEnvelope):
        raise ValueError("not an index file produced by repro.core.persistence")
    if envelope.format_version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format version {envelope.format_version} "
            f"(expected {_FORMAT_VERSION})"
        )
    fingerprint = dataset_fingerprint(dataset)
    if fingerprint != envelope.dataset_fingerprint:
        raise ValueError(
            "dataset fingerprint mismatch: the index was built on different data"
        )
    method = pickle.loads(envelope.method_state)
    store_kwargs = {"page_bytes": page_bytes} if page_bytes else {}
    method.store = SeriesStore(dataset, **store_kwargs)
    return method
