"""Saving and loading built indexes.

Index construction is the expensive phase for most of the paper's methods, so a
library users would adopt needs a way to build once and reuse the structure
across sessions.  Built methods are serialized together with the fingerprint of
the dataset they were built on; loading verifies the fingerprint so a stale
index is never silently used against different data.

The envelope also records the *storage provenance* of the store the method was
built on — backend kind, source file path, page geometry, and (for the
compressed backend) the quantization parameters — so an index built over a
dataset file can be reloaded with no dataset object at all:
:func:`load_method` reopens the recorded file lazily and re-attaches a store
of the recorded backend kind (mmap or compressed).

The format is Python pickle.  Pickle is appropriate here because indexes are
local artifacts produced and consumed by the same trusted user; never load
index files from untrusted sources.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import secrets
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .integrity import CorruptionError, checksum
from .series import SERIES_DTYPE, Dataset
from .storage import DEFAULT_PAGE_BYTES, SeriesStore

__all__ = [
    "dataset_fingerprint",
    "save_method",
    "load_method",
    "IndexEnvelope",
    "DatasetFileError",
]

#: version 2 added the ``storage`` provenance block; version 3 added the
#: ``state_checksum`` over the pickled method state; version 4 records live
#: (growable) stores — the segment manifest, WAL size, and the committed-row
#: *watermark* at save time, so a reloaded index reopens exactly the prefix
#: it was built over even if the store kept growing.  Older files still load
#: (version-1 files cannot re-open their dataset; pre-3 files skip the
#: payload-integrity check because no digest was recorded).
_FORMAT_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, 4)


class DatasetFileError(ValueError):
    """The dataset file recorded in an index envelope is missing or wrong.

    Raised by :func:`load_method` before any backend is constructed, so the
    failure names the recorded file instead of surfacing later as an opaque
    short read.  Carries the offending ``path`` and the recorded backend
    ``kind`` for programmatic handling.
    """

    def __init__(self, message: str, *, path: str = "", kind: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.kind = kind


def dataset_fingerprint(dataset: Dataset) -> str:
    """A stable fingerprint of a dataset's shape and contents.

    Hashes the array shape plus a deterministic sample of rows (first, last,
    and a strided middle selection), which is enough to detect both shape
    changes and content changes without hashing gigabytes.  The sample is read
    through the dataset's storage backend, so fingerprinting a memory-mapped
    collection touches only the sampled rows — never the whole file — and the
    fingerprint is identical across backends (same bytes, same hash).
    """
    digest = hashlib.sha256()
    # Geometry from the dataset, not from `.values` — fingerprinting must not
    # materialize a lazily-backed (mmap/compressed) collection.
    digest.update(str((dataset.count, dataset.length)).encode())
    digest.update(str(np.dtype(SERIES_DTYPE)).encode())
    count = dataset.count
    if count > 0:
        # Degenerate counts (0, 1) must not index with -1: build the sample
        # positions from a set so first == last collapses cleanly.
        positions = sorted({0, count - 1, *range(0, count, max(1, count // 64))})
        sample = np.ascontiguousarray(dataset.row_sample(positions))
        digest.update(sample.tobytes())
    return digest.hexdigest()


@dataclass
class IndexEnvelope:
    """What gets written to disk: the method plus provenance metadata."""

    format_version: int
    method_name: str
    dataset_name: str
    dataset_fingerprint: str
    method_state: bytes
    #: storage provenance: backend kind, source path, page_bytes, geometry
    #: (``SeriesStore.describe_storage``).  Empty for version-1 files.
    storage: dict = field(default_factory=dict)
    #: CRC-32 of ``method_state``; lets :func:`load_method` refuse a silently
    #: truncated or bit-rotted index file with a typed error instead of
    #: unpickling garbage.  Zero on pre-version-3 files (check skipped).
    state_checksum: int = 0

    def summary(self) -> dict:
        info = {
            "method": self.method_name,
            "dataset": self.dataset_name,
            "fingerprint": self.dataset_fingerprint[:12],
            "bytes": len(self.method_state),
        }
        storage = getattr(self, "storage", None) or {}
        if storage:
            info["backend"] = storage.get("kind")
            if storage.get("source_path"):
                info["source_path"] = storage["source_path"]
        return info


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (uniquified tmp + os.replace).

    The same finalize protocol as the data-file writers: a crash at any
    point leaves either the previous complete file or no file — never a
    truncated envelope for ``load_method`` to trip over.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{secrets.token_hex(4)}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def save_method(method, path: str | Path) -> IndexEnvelope:
    """Serialize a built method to ``path`` and return the written envelope.

    The file is finalized atomically (tmp + ``os.replace``), so an
    interrupted save never leaves a torn index file behind.
    """
    if not getattr(method, "is_built", False):
        raise ValueError("only built methods can be saved")
    dataset = method.store.dataset
    storage = method.store.describe_storage()
    # The raw data is not stored inside the index file: the store is detached
    # before pickling and re-attached on load (the dataset travels separately,
    # or — for file-backed stores — is reopened from the recorded source path).
    store = method.store
    method.store = None
    try:
        state = pickle.dumps(method, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        method.store = store
    envelope = IndexEnvelope(
        format_version=_FORMAT_VERSION,
        method_name=method.name,
        dataset_name=dataset.name,
        dataset_fingerprint=dataset_fingerprint(dataset),
        method_state=state,
        storage=storage,
        state_checksum=checksum(state),
    )
    _atomic_write_bytes(
        Path(path), pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    )
    return envelope


def _check_dataset_file(source: str, storage: dict) -> None:
    """Validate the recorded dataset file before any backend touches it.

    Existence is checked for every backend kind; for headerless raw-f32 files
    the size is also checked against the recorded row geometry (``.npy`` and
    ``.rcz`` carry self-describing headers their backends validate on open).
    """
    kind = str(storage.get("kind") or "")
    file = Path(source)
    if kind == "growable":
        # The source is a store *directory*; its manifest is the anchor.
        from .growable import MANIFEST_NAME

        if not file.is_dir() or not (file / MANIFEST_NAME).exists():
            raise DatasetFileError(
                f"recorded growable store not found: {source} (no "
                f"{MANIFEST_NAME}); the index is valid but its store "
                "directory moved or was deleted",
                path=str(source),
                kind=kind,
            )
        return
    if not file.is_file():
        raise DatasetFileError(
            f"recorded dataset file not found: {source} (backend {kind!r}); "
            "the index is valid but its data file moved or was deleted",
            path=str(source),
            kind=kind,
        )
    if storage.get("format") == "raw-f32":
        length = int(storage.get("length") or 0)
        stop = storage.get("stop")
        if stop is None:
            stop = int(storage.get("start") or 0) + int(storage.get("count") or 0)
        required = int(stop) * length * np.dtype(SERIES_DTYPE).itemsize
        actual = file.stat().st_size
        if length > 0 and actual < required:
            raise DatasetFileError(
                f"{source}: file holds {actual} bytes but the envelope records "
                f"rows up to {stop} of length {length} ({required} bytes); the "
                f"file was truncated or replaced after the index was saved "
                f"(backend {kind!r})",
                path=str(source),
                kind=kind,
            )


def load_method(
    path: str | Path,
    dataset: Dataset | None = None,
    page_bytes: int | None = None,
    backend=None,
):
    """Load a method saved with :func:`save_method` and re-attach its store.

    ``dataset`` may be omitted when the index was saved over a file-backed
    store: the recorded source path is reopened lazily (memory-mapped) and
    the re-attached store serves reads out-of-core exactly like the one the
    index was built on.  ``page_bytes`` overrides the recorded page geometry
    (it is validated like the :class:`~repro.core.storage.SeriesStore`
    constructor — zero is an error, not "use the default"); ``backend``
    overrides the backend choice (``"memory"``/``"mmap"`` or an instance).

    Raises ``ValueError`` when the file was produced by an unsupported format
    version, the dataset does not match the fingerprint recorded at save
    time, or no dataset is available; :class:`DatasetFileError` (a
    ``ValueError``) when the recorded dataset file is missing or smaller than
    the recorded geometry requires; and
    :class:`~repro.core.integrity.CorruptionError` when the pickled method
    state does not match the checksum recorded at save time (truncated or
    bit-rotted index file).
    """
    if page_bytes is not None and page_bytes <= 0:
        raise ValueError("page_bytes must be positive")
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    if not isinstance(envelope, IndexEnvelope):
        raise ValueError("not an index file produced by repro.core.persistence")
    if envelope.format_version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported index format version {envelope.format_version} "
            f"(expected one of {_SUPPORTED_VERSIONS})"
        )
    recorded = int(getattr(envelope, "state_checksum", 0) or 0)
    if recorded:
        actual = checksum(envelope.method_state)
        if actual != recorded:
            raise CorruptionError(
                f"{path}: index state checksum mismatch (expected "
                f"{recorded:#010x}, got {actual:#010x}); the file is "
                "truncated or corrupted — rebuild and re-save the index",
                path=str(path),
                expected=recorded,
                actual=actual,
            )
    storage = getattr(envelope, "storage", None) or {}
    if dataset is None:
        source = storage.get("source_path")
        if not source:
            raise ValueError(
                "no dataset given and the index file records no source path; "
                "pass the dataset the index was built on"
            )
        _check_dataset_file(source, storage)
        # Reopen exactly the recorded row range: an index built over a slice
        # of the file (e.g. a shard store) must not come back over the whole
        # file — the fingerprint check would reject it.  The backend kind is
        # recorded too, so a compressed index reopens compressed (with its
        # quantization geometry coming from the .rcz header itself).
        from .backends import CompressedBackend, MmapBackend

        if storage.get("kind") == "growable":
            from .growable import GrowableBackend

            # Pin the watermark recorded at save time: rows ingested since
            # then must stay invisible or the fingerprint check would reject
            # the reopened store.
            backend = GrowableBackend(
                source,
                length=storage.get("length"),
                start=storage.get("start", 0),
                stop=storage.get("stop"),
            )
        elif storage.get("kind") == "compressed":
            backend = CompressedBackend(
                source,
                start=storage.get("start", 0),
                stop=storage.get("stop"),
            )
        else:
            backend = MmapBackend(
                source,
                length=storage.get("length"),
                start=storage.get("start", 0),
                stop=storage.get("stop"),
            )
        dataset = Dataset(
            values=None,
            name=envelope.dataset_name,
            metadata={"source_path": str(source), "format": storage.get("format")},
            backend=backend,
        )
    fingerprint = dataset_fingerprint(dataset)
    if fingerprint != envelope.dataset_fingerprint:
        raise ValueError(
            "dataset fingerprint mismatch: the index was built on different data"
        )
    method = pickle.loads(envelope.method_state)
    if page_bytes is None:
        page_bytes = storage.get("page_bytes") or DEFAULT_PAGE_BYTES
    method.store = SeriesStore(dataset, page_bytes=page_bytes, backend=backend)
    return method
