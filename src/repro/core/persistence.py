"""Saving and loading built indexes.

Index construction is the expensive phase for most of the paper's methods, so a
library users would adopt needs a way to build once and reuse the structure
across sessions.  Built methods are serialized together with the fingerprint of
the dataset they were built on; loading verifies the fingerprint so a stale
index is never silently used against different data.

The envelope also records the *storage provenance* of the store the method was
built on — backend kind, source file path, page geometry, and (for the
compressed backend) the quantization parameters — so an index built over a
dataset file can be reloaded with no dataset object at all:
:func:`load_method` reopens the recorded file lazily and re-attaches a store
of the recorded backend kind (mmap or compressed).

The format is Python pickle.  Pickle is appropriate here because indexes are
local artifacts produced and consumed by the same trusted user; never load
index files from untrusted sources.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .series import SERIES_DTYPE, Dataset
from .storage import DEFAULT_PAGE_BYTES, SeriesStore

__all__ = ["dataset_fingerprint", "save_method", "load_method", "IndexEnvelope"]

#: version 2 added the ``storage`` provenance block; version-1 files (no
#: storage recorded) still load, they just cannot re-open their dataset.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def dataset_fingerprint(dataset: Dataset) -> str:
    """A stable fingerprint of a dataset's shape and contents.

    Hashes the array shape plus a deterministic sample of rows (first, last,
    and a strided middle selection), which is enough to detect both shape
    changes and content changes without hashing gigabytes.  The sample is read
    through the dataset's storage backend, so fingerprinting a memory-mapped
    collection touches only the sampled rows — never the whole file — and the
    fingerprint is identical across backends (same bytes, same hash).
    """
    digest = hashlib.sha256()
    # Geometry from the dataset, not from `.values` — fingerprinting must not
    # materialize a lazily-backed (mmap/compressed) collection.
    digest.update(str((dataset.count, dataset.length)).encode())
    digest.update(str(np.dtype(SERIES_DTYPE)).encode())
    count = dataset.count
    if count > 0:
        # Degenerate counts (0, 1) must not index with -1: build the sample
        # positions from a set so first == last collapses cleanly.
        positions = sorted({0, count - 1, *range(0, count, max(1, count // 64))})
        sample = np.ascontiguousarray(dataset.row_sample(positions))
        digest.update(sample.tobytes())
    return digest.hexdigest()


@dataclass
class IndexEnvelope:
    """What gets written to disk: the method plus provenance metadata."""

    format_version: int
    method_name: str
    dataset_name: str
    dataset_fingerprint: str
    method_state: bytes
    #: storage provenance: backend kind, source path, page_bytes, geometry
    #: (``SeriesStore.describe_storage``).  Empty for version-1 files.
    storage: dict = field(default_factory=dict)

    def summary(self) -> dict:
        info = {
            "method": self.method_name,
            "dataset": self.dataset_name,
            "fingerprint": self.dataset_fingerprint[:12],
            "bytes": len(self.method_state),
        }
        storage = getattr(self, "storage", None) or {}
        if storage:
            info["backend"] = storage.get("kind")
            if storage.get("source_path"):
                info["source_path"] = storage["source_path"]
        return info


def save_method(method, path: str | Path) -> IndexEnvelope:
    """Serialize a built method to ``path`` and return the written envelope."""
    if not getattr(method, "is_built", False):
        raise ValueError("only built methods can be saved")
    dataset = method.store.dataset
    storage = method.store.describe_storage()
    # The raw data is not stored inside the index file: the store is detached
    # before pickling and re-attached on load (the dataset travels separately,
    # or — for file-backed stores — is reopened from the recorded source path).
    store = method.store
    method.store = None
    try:
        state = pickle.dumps(method, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        method.store = store
    envelope = IndexEnvelope(
        format_version=_FORMAT_VERSION,
        method_name=method.name,
        dataset_name=dataset.name,
        dataset_fingerprint=dataset_fingerprint(dataset),
        method_state=state,
        storage=storage,
    )
    with open(path, "wb") as handle:
        pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return envelope


def load_method(
    path: str | Path,
    dataset: Dataset | None = None,
    page_bytes: int | None = None,
    backend=None,
):
    """Load a method saved with :func:`save_method` and re-attach its store.

    ``dataset`` may be omitted when the index was saved over a file-backed
    store: the recorded source path is reopened lazily (memory-mapped) and
    the re-attached store serves reads out-of-core exactly like the one the
    index was built on.  ``page_bytes`` overrides the recorded page geometry
    (it is validated like the :class:`~repro.core.storage.SeriesStore`
    constructor — zero is an error, not "use the default"); ``backend``
    overrides the backend choice (``"memory"``/``"mmap"`` or an instance).

    Raises ``ValueError`` when the file was produced by an unsupported format
    version, the dataset does not match the fingerprint recorded at save
    time, or no dataset is available.
    """
    if page_bytes is not None and page_bytes <= 0:
        raise ValueError("page_bytes must be positive")
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    if not isinstance(envelope, IndexEnvelope):
        raise ValueError("not an index file produced by repro.core.persistence")
    if envelope.format_version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported index format version {envelope.format_version} "
            f"(expected one of {_SUPPORTED_VERSIONS})"
        )
    storage = getattr(envelope, "storage", None) or {}
    if dataset is None:
        source = storage.get("source_path")
        if not source:
            raise ValueError(
                "no dataset given and the index file records no source path; "
                "pass the dataset the index was built on"
            )
        # Reopen exactly the recorded row range: an index built over a slice
        # of the file (e.g. a shard store) must not come back over the whole
        # file — the fingerprint check would reject it.  The backend kind is
        # recorded too, so a compressed index reopens compressed (with its
        # quantization geometry coming from the .rcz header itself).
        from .backends import CompressedBackend, MmapBackend

        if storage.get("kind") == "compressed":
            backend = CompressedBackend(
                source,
                start=storage.get("start", 0),
                stop=storage.get("stop"),
            )
        else:
            backend = MmapBackend(
                source,
                length=storage.get("length"),
                start=storage.get("start", 0),
                stop=storage.get("stop"),
            )
        dataset = Dataset(
            values=None,
            name=envelope.dataset_name,
            metadata={"source_path": str(source), "format": storage.get("format")},
            backend=backend,
        )
    fingerprint = dataset_fingerprint(dataset)
    if fingerprint != envelope.dataset_fingerprint:
        raise ValueError(
            "dataset fingerprint mismatch: the index was built on different data"
        )
    method = pickle.loads(envelope.method_state)
    if page_bytes is None:
        page_bytes = storage.get("page_bytes") or DEFAULT_PAGE_BYTES
    method.store = SeriesStore(dataset, page_bytes=page_bytes, backend=backend)
    return method
