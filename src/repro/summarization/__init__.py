"""Summarization (dimensionality reduction) techniques used by the indexes.

The paper's Figure 1 surveys these techniques; every index in
:mod:`repro.indexes` is built on one of them:

* :class:`PaaSummarizer` — Piecewise Aggregate Approximation (R*-tree, SAX).
* :class:`ApcaSummarizer` — Adaptive Piecewise Constant Approximation.
* :class:`EapcaSummarizer` — Extended APCA with per-segment std (DSTree).
* :class:`IsaxSummarizer` — SAX / iSAX symbolic words (iSAX2+, ADS+).
* :class:`SfaSummarizer` — Symbolic Fourier Approximation (SFA trie).
* :class:`DftSummarizer` — truncated Fourier coefficients (VA+file, MASS).
* :class:`DhwtSummarizer` — Discrete Haar Wavelet Transform (Stepwise).
* :class:`VaPlusSummarizer` — VA+ non-uniform scalar quantization (VA+file).
"""

from .base import Summarizer, tightness_of_lower_bound
from .paa import PaaSummarizer, paa_transform, paa_lower_bound
from .apca import ApcaSummarizer, ApcaSegment, apca_transform
from .eapca import EapcaSummarizer, NodeSynopsis, SegmentSynopsis
from .sax import IsaxSummarizer, SaxWord, sax_breakpoints
from .sfa import SfaSummarizer
from .dft import DftSummarizer, dft_coefficients
from .dhwt import DhwtSummarizer, haar_transform, inverse_haar_transform
from .vaplus import VaPlusSummarizer, allocate_bits, lloyd_max_boundaries

__all__ = [
    "Summarizer",
    "tightness_of_lower_bound",
    "PaaSummarizer",
    "paa_transform",
    "paa_lower_bound",
    "ApcaSummarizer",
    "ApcaSegment",
    "apca_transform",
    "EapcaSummarizer",
    "NodeSynopsis",
    "SegmentSynopsis",
    "IsaxSummarizer",
    "SaxWord",
    "sax_breakpoints",
    "SfaSummarizer",
    "DftSummarizer",
    "dft_coefficients",
    "DhwtSummarizer",
    "haar_transform",
    "inverse_haar_transform",
    "VaPlusSummarizer",
    "allocate_bits",
    "lloyd_max_boundaries",
]
