"""Discrete Fourier Transform summarization.

DFT keeps the first few Fourier coefficients of a series.  By Parseval's
theorem the Euclidean distance between the retained (properly scaled)
coefficients lower-bounds the distance between the original series, which is
what makes DFT usable inside indexes (SFA, VA+file in this paper — the paper
modified VA+file to use DFT instead of KLT for efficiency).
"""

from __future__ import annotations

import numpy as np

from .base import Summarizer

__all__ = ["DftSummarizer", "dft_coefficients"]


def dft_coefficients(series: np.ndarray, coefficients: int) -> np.ndarray:
    """Real-valued DFT summary: interleaved (real, imag) parts of the first terms.

    The DC coefficient's imaginary part is always zero, so the layout is
    ``[re(c0), im(c0), re(c1), im(c1), ...]`` truncated to ``coefficients``
    values.  Coefficients are normalized by ``1/sqrt(n)`` so that Parseval's
    theorem gives the lower bound without extra scaling.
    """
    arr = np.asarray(series, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    n = arr.shape[1]
    spectrum = np.fft.rfft(arr, axis=1) / np.sqrt(n)
    needed_complex = (coefficients + 1) // 2 + 1
    spectrum = spectrum[:, :needed_complex]
    interleaved = np.empty((arr.shape[0], 2 * spectrum.shape[1]), dtype=np.float64)
    interleaved[:, 0::2] = spectrum.real
    interleaved[:, 1::2] = spectrum.imag
    out = interleaved[:, :coefficients]
    return out[0] if single else out


class DftSummarizer(Summarizer):
    """DFT summarizer keeping ``dimensions`` real values (interleaved re/im).

    The lower bound accounts for the symmetry of the real FFT: every retained
    non-DC, non-Nyquist coefficient appears twice in the full spectrum, so its
    squared difference is doubled.
    """

    name = "dft"

    def __init__(self, series_length: int, coefficients: int = 16) -> None:
        # The interleaved (real, imag) layout legitimately holds up to
        # 2 * (n // 2 + 1) values; cap the request there but satisfy the base
        # class invariant with the effective dimensionality.
        full_spectrum = 2 * (series_length // 2 + 1)
        coefficients = min(coefficients, full_spectrum)
        super().__init__(series_length, min(coefficients, series_length))
        self.dimensions = coefficients
        self.coefficients = coefficients
        self._weights = self._coefficient_weights(series_length, coefficients)

    @staticmethod
    def _coefficient_weights(series_length: int, coefficients: int) -> np.ndarray:
        """Multiplicity of each retained value in the full (two-sided) spectrum."""
        weights = np.full(coefficients, 2.0, dtype=np.float64)
        # DC real part counted once; DC imaginary part is always zero.
        weights[0] = 1.0
        if coefficients > 1:
            weights[1] = 1.0
        # If the series length is even and we retained the Nyquist coefficient,
        # it is also counted once; detect it from the interleaved position.
        if series_length % 2 == 0:
            nyquist_real_pos = 2 * (series_length // 2)
            if nyquist_real_pos < coefficients:
                weights[nyquist_real_pos] = 1.0
                if nyquist_real_pos + 1 < coefficients:
                    weights[nyquist_real_pos + 1] = 1.0
        return weights

    def transform(self, series: np.ndarray) -> np.ndarray:
        return dft_coefficients(series, self.coefficients)

    def transform_batch(self, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        return dft_coefficients(arr, self.coefficients)

    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        q = np.asarray(query_summary, dtype=np.float64)
        c = np.asarray(candidate_summary, dtype=np.float64)
        diff = q - c
        return float(np.sqrt(np.sum(self._weights * diff * diff)))

    def lower_bound_batch(
        self, query_summary: np.ndarray, candidate_summaries: np.ndarray
    ) -> np.ndarray:
        q = np.asarray(query_summary, dtype=np.float64)
        c = np.asarray(candidate_summaries, dtype=np.float64)
        if c.ndim == 1:
            c = c[np.newaxis, :]
        diff = c - q[np.newaxis, :]
        return np.sqrt(np.sum(self._weights[np.newaxis, :] * diff * diff, axis=1))

    def mindist_to_rectangle(
        self, query_summary: np.ndarray, lower: np.ndarray, upper: np.ndarray
    ) -> float:
        """Lower bound from a query to an axis-aligned cell in DFT space."""
        q = np.asarray(query_summary, dtype=np.float64)
        lo = np.asarray(lower, dtype=np.float64)
        hi = np.asarray(upper, dtype=np.float64)
        below = np.clip(lo - q, 0.0, None)
        above = np.clip(q - hi, 0.0, None)
        gap = np.maximum(below, above)
        return float(np.sqrt(np.sum(self._weights * gap * gap)))
