"""Common interface for data series summarization techniques.

Every summarizer maps a series of length ``n`` to a reduced representation and
provides a *lower-bounding* distance: the distance between two summaries (or
between a query and a summary region) never exceeds the true Euclidean distance
between the original series.  This is the property indexes use to prune the
search space without false dismissals.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Summarizer", "tightness_of_lower_bound"]


class Summarizer(abc.ABC):
    """Abstract base class for summarization techniques."""

    #: short identifier used in reports ("paa", "sax", "sfa", ...)
    name: str = "base"

    def __init__(self, series_length: int, dimensions: int) -> None:
        if series_length <= 0:
            raise ValueError("series_length must be positive")
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        if dimensions > series_length:
            raise ValueError(
                "summary dimensions cannot exceed the series length "
                f"({dimensions} > {series_length})"
            )
        self.series_length = int(series_length)
        self.dimensions = int(dimensions)

    # -- core API -------------------------------------------------------------
    @abc.abstractmethod
    def transform(self, series: np.ndarray) -> np.ndarray:
        """Summarize one series (1-d) or a batch (2-d, one series per row)."""

    @abc.abstractmethod
    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        """Lower bound on the Euclidean distance between the original series."""

    # -- convenience ----------------------------------------------------------
    def transform_batch(self, series: np.ndarray) -> np.ndarray:
        """Summarize a batch of series; default delegates to :meth:`transform`."""
        arr = np.asarray(series)
        if arr.ndim == 1:
            return self.transform(arr)[np.newaxis, :]
        return np.vstack([self.transform(row) for row in arr])

    def transform_stream(self, blocks, count: int, dtype=None) -> np.ndarray:
        """Summarize a chunked stream of series into one ``(count, dims)`` matrix.

        ``blocks`` yields ``(slice, block)`` pairs covering rows ``0:count``
        (e.g. :meth:`repro.core.storage.SeriesStore.scan_blocks`); each block
        is summarized independently with :meth:`transform_batch` and written
        into its slice of the output.  Because every summarizer here is
        row-local, the result is bitwise identical to ``transform_batch`` over
        the whole collection — but only one chunk of raw float64 staging is
        ever resident, which is what makes index bulk builds RSS-bounded.
        ``dtype`` overrides the output storage width (values must fit; index
        builders narrow bounded symbol matrices they retain long-term).
        """
        out: np.ndarray | None = None
        for rows, block in blocks:
            part = self.transform_batch(block)
            if out is None:
                out = np.empty((count, part.shape[1]), dtype=dtype or part.dtype)
            out[rows] = part
        if out is None:
            # An empty stream (zero-row collection) still has a known width.
            return np.empty((0, self.dimensions), dtype=dtype or np.float64)
        return out

    def lower_bound_batch(
        self, query_summary: np.ndarray, candidate_summaries: np.ndarray
    ) -> np.ndarray:
        """Lower bounds between one query summary and many candidate summaries."""
        cands = np.asarray(candidate_summaries)
        if cands.ndim == 1:
            cands = cands[np.newaxis, :]
        return np.array(
            [self.lower_bound(query_summary, row) for row in cands], dtype=np.float64
        )


def tightness_of_lower_bound(
    lower_bounds: np.ndarray, true_distances: np.ndarray
) -> float:
    """TLB: mean ratio of lower-bound distance to true distance (paper §4.2).

    Pairs with a zero true distance are skipped (the ratio is undefined there).
    """
    lbs = np.asarray(lower_bounds, dtype=np.float64)
    true = np.asarray(true_distances, dtype=np.float64)
    mask = true > 0
    if not np.any(mask):
        return 1.0
    return float(np.mean(lbs[mask] / true[mask]))
