"""VA+ quantization: the approximation scheme behind the VA+file.

The VA+file improves on the VA-file in two ways examined by the paper: it first
decorrelates the data with an energy-compacting transform (the paper swaps the
original KLT for DFT for efficiency, and so does this implementation), then
(a) allocates quantization bits *non-uniformly* across dimensions proportionally
to their energy, and (b) places the decision intervals of each dimension with
k-means (Lloyd's algorithm) instead of equi-depth binning.  The resulting cell
of a candidate yields lower and upper bounds on its distance to any query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Summarizer
from .dft import DftSummarizer

__all__ = ["VaPlusSummarizer", "allocate_bits", "lloyd_max_boundaries"]


def allocate_bits(energies: np.ndarray, total_bits: int) -> np.ndarray:
    """Allocate ``total_bits`` across dimensions proportionally to their energy.

    Greedy water-filling: repeatedly give one bit to the dimension with the
    highest remaining (halved per bit already assigned) energy.  Dimensions with
    zero energy receive no bits.
    """
    energy = np.asarray(energies, dtype=np.float64).copy()
    bits = np.zeros(energy.shape[0], dtype=np.int64)
    if total_bits <= 0:
        return bits
    remaining = energy.copy()
    for _ in range(total_bits):
        j = int(np.argmax(remaining))
        if remaining[j] <= 0:
            break
        bits[j] += 1
        remaining[j] /= 4.0  # each extra bit quarters the quantization error
    return bits


def lloyd_max_boundaries(
    values: np.ndarray, levels: int, iterations: int = 20
) -> np.ndarray:
    """1-d k-means (Lloyd-Max) decision boundaries for ``levels`` cells.

    Returns ``levels - 1`` increasing boundaries.  Falls back to quantile
    boundaries when the sample has too few distinct values.
    """
    data = np.sort(np.asarray(values, dtype=np.float64))
    if levels <= 1:
        return np.empty(0, dtype=np.float64)
    unique = np.unique(data)
    if unique.shape[0] <= levels:
        # Degenerate sample: place boundaries between the distinct values.
        mids = (unique[:-1] + unique[1:]) / 2.0
        pad = np.full(max(0, levels - 1 - mids.shape[0]), unique[-1] + 1e-9)
        return np.concatenate([mids, pad])[: levels - 1]

    # Initialize centroids at equi-depth quantiles.
    quantiles = np.linspace(0, 1, levels + 2)[1:-1]
    centroids = np.quantile(data, quantiles)[:levels]
    for _ in range(iterations):
        boundaries = (centroids[:-1] + centroids[1:]) / 2.0
        assignment = np.searchsorted(boundaries, data, side="left")
        new_centroids = centroids.copy()
        for cell in range(levels):
            members = data[assignment == cell]
            if members.shape[0]:
                new_centroids[cell] = members.mean()
        if np.allclose(new_centroids, centroids):
            centroids = new_centroids
            break
        centroids = np.sort(new_centroids)
    boundaries = (centroids[:-1] + centroids[1:]) / 2.0
    return np.maximum.accumulate(boundaries)


@dataclass
class _DimensionQuantizer:
    """Quantization grid of one transformed dimension."""

    bits: int
    boundaries: np.ndarray  # length 2**bits - 1 (empty when bits == 0)

    @property
    def levels(self) -> int:
        return 1 << self.bits

    def quantize(self, values: np.ndarray) -> np.ndarray:
        if self.bits == 0:
            return np.zeros(np.asarray(values).shape, dtype=np.int64)
        return np.searchsorted(self.boundaries, values, side="left").astype(np.int64)

    def cell_bounds(self, cell: int) -> tuple[float, float]:
        if self.bits == 0:
            return -np.inf, np.inf
        low = -np.inf if cell == 0 else float(self.boundaries[cell - 1])
        high = np.inf if cell >= self.levels - 1 else float(self.boundaries[cell])
        return low, high


class VaPlusSummarizer(Summarizer):
    """VA+ summarizer: DFT + energy-based bit allocation + Lloyd-Max cells.

    Parameters
    ----------
    series_length:
        Length of the series.
    coefficients:
        Number of DFT values retained before quantization (16 in the paper).
    bits_per_dimension:
        Average bit budget per retained dimension; the total budget
        ``coefficients * bits_per_dimension`` is redistributed non-uniformly.
    """

    name = "va+"

    def __init__(
        self,
        series_length: int,
        coefficients: int = 16,
        bits_per_dimension: int = 4,
    ) -> None:
        super().__init__(series_length, coefficients)
        if bits_per_dimension <= 0:
            raise ValueError("bits_per_dimension must be positive")
        self.coefficients = coefficients
        self.total_bits = coefficients * bits_per_dimension
        self.dft = DftSummarizer(series_length, coefficients)
        self.quantizers: list[_DimensionQuantizer] | None = None
        self.bit_allocation: np.ndarray | None = None

    # -- training -------------------------------------------------------------
    def fit(self, sample: np.ndarray) -> "VaPlusSummarizer":
        """Learn the bit allocation and per-dimension cells from a data sample."""
        arr = np.asarray(sample, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        coeffs = self.dft.transform_batch(arr)
        energies = coeffs.var(axis=0) * self.dft._weights
        bits = allocate_bits(energies, self.total_bits)
        quantizers = []
        for j in range(self.coefficients):
            if bits[j] == 0:
                quantizers.append(_DimensionQuantizer(bits=0, boundaries=np.empty(0)))
                continue
            boundaries = lloyd_max_boundaries(coeffs[:, j], 1 << int(bits[j]))
            quantizers.append(_DimensionQuantizer(bits=int(bits[j]), boundaries=boundaries))
        self.quantizers = quantizers
        self.bit_allocation = bits
        return self

    def _require_fitted(self) -> list[_DimensionQuantizer]:
        if self.quantizers is None:
            raise RuntimeError("VaPlusSummarizer.fit must be called before transforming")
        return self.quantizers

    # -- transforms --------------------------------------------------------------
    def transform(self, series: np.ndarray) -> np.ndarray:
        """Cell indices (the 'approximation') of one series or a batch."""
        quantizers = self._require_fitted()
        coeffs = self.dft.transform_batch(np.atleast_2d(np.asarray(series)))
        cells = np.empty_like(coeffs, dtype=np.int64)
        for j, quantizer in enumerate(quantizers):
            cells[:, j] = quantizer.quantize(coeffs[:, j])
        arr = np.asarray(series)
        return cells[0] if arr.ndim == 1 else cells

    def transform_batch(self, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        return self.transform(arr)

    def dft_of(self, series: np.ndarray) -> np.ndarray:
        """Raw DFT coefficients of a series (the query side of the bounds)."""
        return self.dft.transform(series)

    # -- distances ---------------------------------------------------------------
    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        """Lower bound from the query's DFT coefficients to a candidate's cell."""
        quantizers = self._require_fitted()
        q = np.asarray(query_summary, dtype=np.float64)
        cells = np.asarray(candidate_summary, dtype=np.int64)
        gaps = np.zeros(self.coefficients, dtype=np.float64)
        for j, quantizer in enumerate(quantizers):
            low, high = quantizer.cell_bounds(int(cells[j]))
            if q[j] < low:
                gaps[j] = low - q[j]
            elif q[j] > high:
                gaps[j] = q[j] - high
        weights = self.dft._weights
        return float(np.sqrt(np.sum(weights * gaps * gaps)))

    def upper_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        """Upper bound on the retained-coefficient distance (finite only when
        every populated cell is bounded; unbounded edge cells yield ``inf``)."""
        quantizers = self._require_fitted()
        q = np.asarray(query_summary, dtype=np.float64)
        cells = np.asarray(candidate_summary, dtype=np.int64)
        total = 0.0
        weights = self.dft._weights
        for j, quantizer in enumerate(quantizers):
            low, high = quantizer.cell_bounds(int(cells[j]))
            if not np.isfinite(low) or not np.isfinite(high):
                return float("inf")
            gap = max(abs(q[j] - low), abs(q[j] - high))
            total += weights[j] * gap * gap
        return float(np.sqrt(total))

    def lower_bound_batch(
        self, query_summary: np.ndarray, candidate_summaries: np.ndarray
    ) -> np.ndarray:
        quantizers = self._require_fitted()
        q = np.asarray(query_summary, dtype=np.float64)
        cells = np.asarray(candidate_summaries, dtype=np.int64)
        if cells.ndim == 1:
            cells = cells[np.newaxis, :]
        gaps = np.zeros_like(cells, dtype=np.float64)
        for j, quantizer in enumerate(quantizers):
            if quantizer.bits == 0:
                continue
            padded = np.empty(quantizer.levels + 1, dtype=np.float64)
            padded[0] = -np.inf
            padded[-1] = np.inf
            padded[1:-1] = quantizer.boundaries
            low = padded[cells[:, j]]
            high = padded[cells[:, j] + 1]
            below = np.clip(low - q[j], 0.0, None)
            above = np.clip(q[j] - high, 0.0, None)
            below = np.where(np.isfinite(below), below, 0.0)
            above = np.where(np.isfinite(above), above, 0.0)
            gaps[:, j] = below + above
        weights = self.dft._weights
        return np.sqrt(np.sum(weights[np.newaxis, :] * gaps * gaps, axis=1))
