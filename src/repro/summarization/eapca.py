"""EAPCA summarization (Extended Adaptive Piecewise Constant Approximation).

EAPCA represents each segment of a series by its mean *and* standard deviation.
It is the summarization behind the DSTree index: a DSTree node keeps, for every
segment, the range of means and the range of standard deviations of the series
it contains ("node synopsis"), and derives both a lower- and an upper-bounding
distance from a query to the node (Wang et al., VLDB 2013).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Summarizer

__all__ = [
    "EapcaSummarizer",
    "SegmentSynopsis",
    "NodeSynopsis",
    "batch_segment_statistics",
    "synopsis_from_statistics",
    "synopsis_from_stream",
    "query_segment_stats",
    "stack_synopses",
    "synopses_lower_bounds",
]


def _segment_stats(series: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Per-segment (mean, std) for one series or a batch; shape (..., 2*segments)."""
    arr = np.asarray(series, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    segments = len(boundaries) - 1
    out = np.empty((arr.shape[0], 2 * segments), dtype=np.float64)
    for j in range(segments):
        chunk = arr[:, boundaries[j] : boundaries[j + 1]]
        out[:, 2 * j] = chunk.mean(axis=1)
        out[:, 2 * j + 1] = chunk.std(axis=1)
    return out[0] if single else out


def batch_segment_statistics(
    data: np.ndarray, boundaries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(means, stds)`` matrices of a series block.

    Returns two ``(series, segments)`` float64 matrices using the same
    ``np.mean``/``np.std`` arithmetic as the per-series paths, so bulk split
    decisions and incremental routing agree to floating-point accuracy.  The
    DSTree bulk loader scores every candidate split policy of a node from one
    call over the node's whole position block.
    """
    arr = np.asarray(data, dtype=np.float64)
    segments = len(boundaries) - 1
    means = np.empty((arr.shape[0], segments), dtype=np.float64)
    stds = np.empty((arr.shape[0], segments), dtype=np.float64)
    for j in range(segments):
        chunk = arr[:, boundaries[j] : boundaries[j + 1]]
        means[:, j] = chunk.mean(axis=1)
        stds[:, j] = chunk.std(axis=1)
    return means, stds


def synopsis_from_statistics(
    boundaries: np.ndarray, means: np.ndarray, stds: np.ndarray
) -> "NodeSynopsis":
    """A :class:`NodeSynopsis` from already-computed per-row segment statistics.

    ``means``/``stds`` are ``(series, segments)`` columns over ``boundaries``
    (e.g. a node's streamed split statistics, possibly masked to one child's
    rows).  Identical to :meth:`NodeSynopsis.from_series` over the raw block —
    the min/max of the same float values — without touching the raw data
    again, which is how the streamed DSTree build hands synopses to children
    of a horizontal split.
    """
    segs = [
        SegmentSynopsis(
            mean_min=float(means[:, j].min()),
            mean_max=float(means[:, j].max()),
            std_min=float(stds[:, j].min()),
            std_max=float(stds[:, j].max()),
            width=int(boundaries[j + 1] - boundaries[j]),
        )
        for j in range(len(boundaries) - 1)
    ]
    return NodeSynopsis(boundaries=np.asarray(boundaries, dtype=np.int64), segments=segs)


def synopsis_from_stream(blocks, boundaries: np.ndarray) -> "NodeSynopsis":
    """A :class:`NodeSynopsis` accumulated over a chunked stream of raw rows.

    Folds each chunk's per-row segment statistics into running min/max
    ranges; min/max compose exactly across chunks, so the result is bitwise
    identical to :meth:`NodeSynopsis.from_series` over the concatenated
    block.  Used where no reusable stat columns exist (children of a vertical
    DSTree split, whose refined segmentation differs from the parent's).
    """
    segments = len(boundaries) - 1
    mean_min = np.full(segments, np.inf)
    mean_max = np.full(segments, -np.inf)
    std_min = np.full(segments, np.inf)
    std_max = np.full(segments, -np.inf)
    for _, block in blocks:
        means, stds = batch_segment_statistics(block, boundaries)
        np.minimum(mean_min, means.min(axis=0), out=mean_min)
        np.maximum(mean_max, means.max(axis=0), out=mean_max)
        np.minimum(std_min, stds.min(axis=0), out=std_min)
        np.maximum(std_max, stds.max(axis=0), out=std_max)
    segs = [
        SegmentSynopsis(
            mean_min=float(mean_min[j]),
            mean_max=float(mean_max[j]),
            std_min=float(std_min[j]),
            std_max=float(std_max[j]),
            width=int(boundaries[j + 1] - boundaries[j]),
        )
        for j in range(segments)
    ]
    return NodeSynopsis(boundaries=np.asarray(boundaries, dtype=np.int64), segments=segs)


@dataclass
class SegmentSynopsis:
    """Min/max of the per-series segment means and standard deviations."""

    mean_min: float
    mean_max: float
    std_min: float
    std_max: float
    width: int

    def contains_mean(self, value: float) -> bool:
        return self.mean_min <= value <= self.mean_max


@dataclass
class NodeSynopsis:
    """Synopsis of a set of series over a common segmentation.

    This is the structure a DSTree node maintains; the lower/upper bounding
    distances between a query and the node are computed from it.
    """

    boundaries: np.ndarray
    segments: list

    @classmethod
    def from_series(cls, series: np.ndarray, boundaries: np.ndarray) -> "NodeSynopsis":
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        segs = []
        for j in range(len(boundaries) - 1):
            chunk = arr[:, boundaries[j] : boundaries[j + 1]]
            means = chunk.mean(axis=1)
            stds = chunk.std(axis=1)
            segs.append(
                SegmentSynopsis(
                    mean_min=float(means.min()),
                    mean_max=float(means.max()),
                    std_min=float(stds.min()),
                    std_max=float(stds.max()),
                    width=int(boundaries[j + 1] - boundaries[j]),
                )
            )
        return cls(boundaries=np.asarray(boundaries, dtype=np.int64), segments=segs)

    def update(self, series: np.ndarray) -> None:
        """Grow the synopsis to cover one more series."""
        arr = np.asarray(series, dtype=np.float64)
        for j, seg in enumerate(self.segments):
            chunk = arr[self.boundaries[j] : self.boundaries[j + 1]]
            mean = float(chunk.mean())
            std = float(chunk.std())
            seg.mean_min = min(seg.mean_min, mean)
            seg.mean_max = max(seg.mean_max, mean)
            seg.std_min = min(seg.std_min, std)
            seg.std_max = max(seg.std_max, std)

    # -- bounding distances ---------------------------------------------------
    def lower_bound(self, query: np.ndarray) -> float:
        """Lower bound on the Euclidean distance from ``query`` to any series here.

        For each segment, the squared distance is at least
        ``width * (mean gap)^2 + width * (std gap)^2`` where the gaps are the
        distances from the query segment's mean/std to the node's ranges
        (zero when inside the range).
        """
        q = np.asarray(query, dtype=np.float64)
        total = 0.0
        for j, seg in enumerate(self.segments):
            chunk = q[self.boundaries[j] : self.boundaries[j + 1]]
            q_mean = float(chunk.mean())
            q_std = float(chunk.std())
            if q_mean < seg.mean_min:
                mean_gap = seg.mean_min - q_mean
            elif q_mean > seg.mean_max:
                mean_gap = q_mean - seg.mean_max
            else:
                mean_gap = 0.0
            if q_std < seg.std_min:
                std_gap = seg.std_min - q_std
            elif q_std > seg.std_max:
                std_gap = q_std - seg.std_max
            else:
                std_gap = 0.0
            total += seg.width * (mean_gap * mean_gap + std_gap * std_gap)
        return float(np.sqrt(total))

    def upper_bound(self, query: np.ndarray) -> float:
        """Upper bound on the distance from ``query`` to *some* series in the node.

        Per segment the distance can be at most
        ``width * (max mean gap)^2 + width * (q_std + max std)^2``; this mirrors
        the (loose but safe) upper bound the DSTree uses for split decisions.
        """
        q = np.asarray(query, dtype=np.float64)
        total = 0.0
        for j, seg in enumerate(self.segments):
            chunk = q[self.boundaries[j] : self.boundaries[j + 1]]
            q_mean = float(chunk.mean())
            q_std = float(chunk.std())
            mean_gap = max(abs(q_mean - seg.mean_min), abs(q_mean - seg.mean_max))
            std_sum = q_std + seg.std_max
            total += seg.width * (mean_gap * mean_gap + std_sum * std_sum)
        return float(np.sqrt(total))


def query_segment_stats(
    query: np.ndarray, boundaries: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment ``(means, stds, widths)`` of a query over one segmentation.

    Uses the same ``np.mean``/``np.std`` arithmetic as the scalar
    :meth:`NodeSynopsis.lower_bound`, so batch and scalar bounds agree to
    floating-point accuracy.  Callers cache the result per (query,
    segmentation) pair — a DSTree traversal revisits the same few
    segmentations at every node.
    """
    q = np.asarray(query, dtype=np.float64)
    segments = len(boundaries) - 1
    means = np.empty(segments, dtype=np.float64)
    stds = np.empty(segments, dtype=np.float64)
    for j in range(segments):
        chunk = q[boundaries[j] : boundaries[j + 1]]
        means[j] = chunk.mean()
        stds[j] = chunk.std()
    widths = np.diff(np.asarray(boundaries, dtype=np.float64))
    return means, stds, widths


def stack_synopses(synopses) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stack the per-segment ranges of synopses sharing one segmentation.

    Returns ``(mean_min, mean_max, std_min, std_max)`` matrices of shape
    ``(nodes, segments)`` — the array-native summary a DSTree node caches for
    its children so a query bounds the whole child set in one call.
    """
    mean_min = np.array([[s.mean_min for s in syn.segments] for syn in synopses])
    mean_max = np.array([[s.mean_max for s in syn.segments] for syn in synopses])
    std_min = np.array([[s.std_min for s in syn.segments] for syn in synopses])
    std_max = np.array([[s.std_max for s in syn.segments] for syn in synopses])
    return mean_min, mean_max, std_min, std_max


def synopses_lower_bounds(
    query_means: np.ndarray,
    query_stds: np.ndarray,
    widths: np.ndarray,
    stacked: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Vectorized :meth:`NodeSynopsis.lower_bound` over many synopses at once.

    ``stacked`` comes from :func:`stack_synopses`; the query-side arrays come
    from :func:`query_segment_stats`.  Every synopsis must share the
    segmentation the query stats were computed over.
    """
    mean_min, mean_max, std_min, std_max = stacked
    q_mean = query_means[np.newaxis, :]
    q_std = query_stds[np.newaxis, :]
    mean_gap = np.maximum(mean_min - q_mean, 0.0) + np.maximum(q_mean - mean_max, 0.0)
    std_gap = np.maximum(std_min - q_std, 0.0) + np.maximum(q_std - std_max, 0.0)
    total = np.sum(widths[np.newaxis, :] * (mean_gap * mean_gap + std_gap * std_gap), axis=1)
    return np.sqrt(total)


class EapcaSummarizer(Summarizer):
    """EAPCA summarizer: per-segment (mean, std) with a lower-bounding distance."""

    name = "eapca"

    def __init__(self, series_length: int, segments: int = 8) -> None:
        super().__init__(series_length, min(segments, series_length))
        self.segments = min(segments, series_length)
        base = series_length // self.segments
        remainder = series_length % self.segments
        widths = np.full(self.segments, base, dtype=np.int64)
        widths[:remainder] += 1
        self.boundaries = np.zeros(self.segments + 1, dtype=np.int64)
        self.boundaries[1:] = np.cumsum(widths)
        self._widths = widths.astype(np.float64)

    def transform(self, series: np.ndarray) -> np.ndarray:
        return _segment_stats(series, self.boundaries)

    def transform_batch(self, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        return _segment_stats(arr, self.boundaries)

    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        """Lower bound from two EAPCA summaries.

        Uses ``width * ((mean difference)^2 + (std difference)^2)`` per segment,
        which lower-bounds the true squared distance for series sharing the
        segmentation.
        """
        q = np.asarray(query_summary, dtype=np.float64)
        c = np.asarray(candidate_summary, dtype=np.float64)
        mean_diff = q[0::2] - c[0::2]
        std_diff = q[1::2] - c[1::2]
        total = np.sum(self._widths * (mean_diff * mean_diff + std_diff * std_diff))
        return float(np.sqrt(total))

    def synopsis(self, series: np.ndarray) -> NodeSynopsis:
        """Build a node synopsis over a batch of series."""
        return NodeSynopsis.from_series(series, self.boundaries)
