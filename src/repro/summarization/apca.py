"""Adaptive Piecewise Constant Approximation (APCA).

APCA represents a series with a small number of *varying-length* segments,
each described by its mean value and right endpoint.  Segment boundaries are
chosen adaptively (here with a greedy merge of the flattest adjacent segments,
a standard practical approximation of the wavelet-based selection in the
original paper).  APCA is included as the historical predecessor of EAPCA;
DSTree builds on the extended variant in :mod:`repro.summarization.eapca`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Summarizer

__all__ = ["ApcaSegment", "ApcaSummarizer", "apca_transform"]


@dataclass(frozen=True)
class ApcaSegment:
    """One APCA segment: mean value over points ``[start, end)``."""

    start: int
    end: int
    mean: float

    @property
    def width(self) -> int:
        return self.end - self.start


def apca_transform(series: np.ndarray, segments: int) -> list[ApcaSegment]:
    """Greedy bottom-up APCA of one series into at most ``segments`` segments.

    Starts from unit-width segments and repeatedly merges the adjacent pair
    whose merge increases the squared reconstruction error the least.
    """
    arr = np.asarray(series, dtype=np.float64)
    n = arr.shape[0]
    if segments <= 0:
        raise ValueError("segments must be positive")
    if segments >= n:
        return [ApcaSegment(i, i + 1, float(arr[i])) for i in range(n)]

    # segment state: start index, end index, sum, sum of squares
    starts = list(range(n))
    ends = list(range(1, n + 1))
    sums = [float(v) for v in arr]
    sqs = [float(v) * float(v) for v in arr]

    def merge_cost(i: int) -> float:
        total = sums[i] + sums[i + 1]
        total_sq = sqs[i] + sqs[i + 1]
        width = ends[i + 1] - starts[i]
        merged_err = total_sq - total * total / width
        err_i = sqs[i] - sums[i] * sums[i] / (ends[i] - starts[i])
        err_j = sqs[i + 1] - sums[i + 1] * sums[i + 1] / (ends[i + 1] - starts[i + 1])
        return merged_err - err_i - err_j

    while len(starts) > segments:
        costs = [merge_cost(i) for i in range(len(starts) - 1)]
        best = int(np.argmin(costs))
        sums[best] += sums[best + 1]
        sqs[best] += sqs[best + 1]
        ends[best] = ends[best + 1]
        del starts[best + 1], ends[best + 1], sums[best + 1], sqs[best + 1]

    return [
        ApcaSegment(start=s, end=e, mean=total / (e - s))
        for s, e, total in zip(starts, ends, sums)
    ]


class ApcaSummarizer(Summarizer):
    """APCA summarizer.

    The flat :meth:`transform` output interleaves (mean, end) pairs so the
    summary can be stored in a fixed-width array; :meth:`segments_of` returns
    the structured view.
    """

    name = "apca"

    def __init__(self, series_length: int, segments: int = 8) -> None:
        super().__init__(series_length, min(segments, series_length))
        self.segments = min(segments, series_length)

    def transform(self, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim == 2:
            return self.transform_batch(arr)
        segs = apca_transform(arr, self.segments)
        out = np.zeros(2 * self.segments, dtype=np.float64)
        for j, seg in enumerate(segs):
            out[2 * j] = seg.mean
            out[2 * j + 1] = seg.end
        # pad missing segments (series shorter than requested segments)
        for j in range(len(segs), self.segments):
            out[2 * j] = segs[-1].mean
            out[2 * j + 1] = segs[-1].end
        return out

    def segments_of(self, series: np.ndarray) -> list[ApcaSegment]:
        return apca_transform(np.asarray(series, dtype=np.float64), self.segments)

    def reconstruct(self, summary: np.ndarray) -> np.ndarray:
        """Piecewise-constant reconstruction of a series from its summary."""
        out = np.zeros(self.series_length, dtype=np.float64)
        start = 0
        for j in range(self.segments):
            mean = summary[2 * j]
            end = int(summary[2 * j + 1])
            end = min(max(end, start), self.series_length)
            out[start:end] = mean
            start = end
        if start < self.series_length:
            out[start:] = summary[2 * (self.segments - 1)]
        return out

    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        """Conservative lower bound via the candidate's piecewise reconstruction.

        The distance between the query reconstruction and the candidate
        reconstruction, minus the reconstruction error bound of each, cannot be
        asserted without per-series error terms; APCA in this library is used
        for analysis and as a stepping stone to EAPCA, so the lower bound here
        is the always-valid trivial bound scaled by the shared-boundary overlap
        (0 when segmentations disagree).  DSTree's operational bound lives in
        :class:`repro.summarization.eapca.NodeSynopsis`.
        """
        q = self.reconstruct(np.asarray(query_summary, dtype=np.float64))
        c = self.reconstruct(np.asarray(candidate_summary, dtype=np.float64))
        # Reconstructions are averages over segments; by Jensen/projection the
        # distance between the two projections lower-bounds the true distance
        # only when both series share the segmentation.  We detect the shared
        # case; otherwise return 0 (a valid, if loose, lower bound).
        q_ends = np.asarray(query_summary, dtype=np.float64)[1::2]
        c_ends = np.asarray(candidate_summary, dtype=np.float64)[1::2]
        if not np.array_equal(q_ends, c_ends):
            return 0.0
        diff = q - c
        return float(np.sqrt(np.dot(diff, diff)))
