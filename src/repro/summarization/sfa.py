"""Symbolic Fourier Approximation (SFA).

SFA first transforms a series into a few DFT coefficients, then discretizes
each coefficient into a symbol using per-coefficient breakpoints learned from a
sample of the data ("Multiple Coefficient Binning", MCB).  Binning can be
equi-depth (quantiles of the sample) or equi-width (uniform over the sample
range).  The lower-bounding distance between a query's raw DFT coefficients and
an SFA word measures the gap from each query coefficient to the word's cell in
that dimension.
"""

from __future__ import annotations

import numpy as np

from .base import Summarizer
from .dft import DftSummarizer

__all__ = ["SfaSummarizer", "words_stream", "lexicographic_order", "prefix_groups"]


def words_stream(summarizer: "SfaSummarizer", blocks, count: int) -> np.ndarray:
    """Chunked driver for the SFA batch transform.

    Fills the ``(count, coefficients)`` integer word matrix from
    ``(slice, float64 block)`` pairs, one chunk at a time.  The DFT and the
    per-coefficient ``searchsorted`` are row-local, so the words are bitwise
    identical to a whole-collection ``transform_batch`` — the trie bulk build
    keeps only the word matrix (8 bytes per coefficient per series) resident
    instead of the raw float64 collection.  The summarizer must be fitted.
    """
    # Symbols are bounded by the alphabet size; the matrix is retained for the
    # trie's whole lifetime, so store it at the narrowest safe width.
    dtype = np.int16 if summarizer.alphabet_size <= 2**15 else np.int64
    return summarizer.transform_stream(blocks, count, dtype=dtype)


def lexicographic_order(words: np.ndarray) -> np.ndarray:
    """Stable lexicographic sort order of SFA words (first symbol primary).

    One ``np.lexsort`` over the whole word matrix is the radix step of the
    trie bulk loader: after sorting, every prefix group occupies a contiguous
    run, so each trie level partitions its slice with :func:`prefix_groups`
    instead of inserting words one at a time.  Stability keeps positions
    ascending within identical words.  The integer dtype of ``words`` is
    preserved (the trie keeps its word matrix at a narrow width; coercing to
    int64 here would copy the whole matrix).
    """
    arr = np.atleast_2d(np.asarray(words))
    return np.lexsort(arr.T[::-1])


def prefix_groups(words: np.ndarray, order: np.ndarray, depth: int):
    """Split a lexicographically sorted index run by the symbol at ``depth``.

    ``order`` indexes rows of ``words`` that share the first ``depth`` symbols
    and are sorted lexicographically (a slice of :func:`lexicographic_order`).
    Yields ``(symbol, sub_order)`` pairs in symbol order; each ``sub_order``
    is itself sorted, so the trie recursion never re-sorts.
    """
    if order.size == 0:
        return
    column = np.asarray(words)[order, depth]
    change = np.flatnonzero(column[1:] != column[:-1]) + 1
    starts = np.concatenate(([0], change, [order.size]))
    for start, stop in zip(starts[:-1], starts[1:]):
        yield int(column[start]), order[start:stop]


class SfaSummarizer(Summarizer):
    """SFA summarizer with MCB binning and the SFA lower-bounding distance.

    Parameters
    ----------
    series_length:
        Length of the series being summarized.
    coefficients:
        Number of retained DFT values (word length); the paper uses 16.
    alphabet_size:
        Symbols per coefficient; the paper's tuned value is 8.
    binning:
        ``"equi-depth"`` (quantile) or ``"equi-width"`` (uniform) binning.
    """

    name = "sfa"

    def __init__(
        self,
        series_length: int,
        coefficients: int = 16,
        alphabet_size: int = 8,
        binning: str = "equi-depth",
    ) -> None:
        super().__init__(series_length, coefficients)
        if alphabet_size < 2:
            raise ValueError("alphabet_size must be at least 2")
        if binning not in ("equi-depth", "equi-width"):
            raise ValueError("binning must be 'equi-depth' or 'equi-width'")
        self.coefficients = coefficients
        self.alphabet_size = alphabet_size
        self.binning = binning
        self.dft = DftSummarizer(series_length, coefficients)
        #: per-coefficient breakpoints, shape (coefficients, alphabet_size - 1)
        self.breakpoints: np.ndarray | None = None

    # -- training ----------------------------------------------------------------
    def fit(self, sample: np.ndarray) -> "SfaSummarizer":
        """Learn per-coefficient breakpoints (MCB) from a sample of series."""
        arr = np.asarray(sample, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        coeffs = self.dft.transform_batch(arr)
        breakpoints = np.empty(
            (self.coefficients, self.alphabet_size - 1), dtype=np.float64
        )
        for j in range(self.coefficients):
            column = np.sort(coeffs[:, j])
            if self.binning == "equi-depth":
                quantiles = np.linspace(0, 1, self.alphabet_size + 1)[1:-1]
                breakpoints[j] = np.quantile(column, quantiles)
            else:
                low, high = column[0], column[-1]
                if high <= low:
                    high = low + 1e-9
                breakpoints[j] = np.linspace(low, high, self.alphabet_size + 1)[1:-1]
            # Breakpoints must be non-decreasing even for degenerate samples.
            breakpoints[j] = np.maximum.accumulate(breakpoints[j])
        self.breakpoints = breakpoints
        return self

    def _require_fitted(self) -> np.ndarray:
        if self.breakpoints is None:
            raise RuntimeError("SfaSummarizer.fit must be called before transforming")
        return self.breakpoints

    # -- transforms ----------------------------------------------------------------
    def transform(self, series: np.ndarray) -> np.ndarray:
        """SFA word (integer symbols) of one series or a batch."""
        breakpoints = self._require_fitted()
        coeffs = self.dft.transform_batch(np.atleast_2d(np.asarray(series)))
        words = np.empty_like(coeffs, dtype=np.int64)
        for j in range(self.coefficients):
            words[:, j] = np.searchsorted(breakpoints[j], coeffs[:, j], side="left")
        arr = np.asarray(series)
        return words[0] if arr.ndim == 1 else words

    def transform_batch(self, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        return self.transform(arr)

    def dft_of(self, series: np.ndarray) -> np.ndarray:
        """Raw DFT coefficients of a series (the query side of the lower bound)."""
        return self.dft.transform(series)

    # -- distances -------------------------------------------------------------------
    def cell_bounds(self, symbol: int, coefficient: int) -> tuple[float, float]:
        """The (low, high) interval of a symbol in one coefficient dimension."""
        breakpoints = self._require_fitted()[coefficient]
        low = -np.inf if symbol == 0 else float(breakpoints[symbol - 1])
        high = np.inf if symbol >= self.alphabet_size - 1 else float(breakpoints[symbol])
        return low, high

    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        """Lower bound between a query's raw DFT coefficients and an SFA word."""
        q = np.asarray(query_summary, dtype=np.float64)
        word = np.asarray(candidate_summary, dtype=np.int64)
        gaps = np.zeros(self.coefficients, dtype=np.float64)
        for j in range(self.coefficients):
            low, high = self.cell_bounds(int(word[j]), j)
            value = q[j]
            if value < low:
                gaps[j] = low - value
            elif value > high:
                gaps[j] = value - high
        # Reuse the DFT summarizer's Parseval weights (conjugate symmetry).
        weights = self.dft._weights
        return float(np.sqrt(np.sum(weights * gaps * gaps)))

    def prefix_lower_bound_batch(
        self, query_summary: np.ndarray, prefixes: np.ndarray
    ) -> np.ndarray:
        """Lower bounds restricted to a word prefix, for many prefixes at once.

        ``prefixes`` is a ``(words, length)`` integer matrix of SFA symbols
        covering only the first ``length <= coefficients`` dimensions — the
        summary available at one level of the SFA trie.  One call bounds a
        query against every child of a trie node, replacing the per-child
        Python loop; matches the scalar prefix bound to floating-point
        accuracy.
        """
        q = np.asarray(query_summary, dtype=np.float64)
        words = np.atleast_2d(np.asarray(prefixes, dtype=np.int64))
        length = words.shape[1]
        if length == 0:
            return np.zeros(words.shape[0], dtype=np.float64)
        breakpoints = self._require_fitted()
        padded = np.empty((length, self.alphabet_size + 1), dtype=np.float64)
        padded[:, 0] = -np.inf
        padded[:, -1] = np.inf
        padded[:, 1:-1] = breakpoints[:length]
        cols = np.arange(length)
        low = padded[cols, words]
        high = padded[cols, words + 1]
        below = np.maximum(low - q[np.newaxis, :length], 0.0)
        above = np.maximum(q[np.newaxis, :length] - high, 0.0)
        gaps = below + above
        weights = self.dft._weights[:length]
        return np.sqrt(np.sum(weights[np.newaxis, :] * gaps * gaps, axis=1))

    def lower_bound_batch(
        self, query_summary: np.ndarray, candidate_summaries: np.ndarray
    ) -> np.ndarray:
        q = np.asarray(query_summary, dtype=np.float64)
        words = np.asarray(candidate_summaries, dtype=np.int64)
        if words.ndim == 1:
            words = words[np.newaxis, :]
        breakpoints = self._require_fitted()
        padded = np.empty((self.coefficients, self.alphabet_size + 1), dtype=np.float64)
        padded[:, 0] = -np.inf
        padded[:, -1] = np.inf
        padded[:, 1:-1] = breakpoints
        # Per-coefficient loop, vectorized over candidates.
        gaps = np.zeros_like(words, dtype=np.float64)
        for j in range(self.coefficients):
            low = padded[j][words[:, j]]
            high = padded[j][words[:, j] + 1]
            below = np.clip(low - q[j], 0.0, None)
            above = np.clip(q[j] - high, 0.0, None)
            below = np.where(np.isfinite(below), below, 0.0)
            above = np.where(np.isfinite(above), above, 0.0)
            gaps[:, j] = below + above
        weights = self.dft._weights
        return np.sqrt(np.sum(weights[np.newaxis, :] * gaps * gaps, axis=1))
