"""Discrete Haar Wavelet Transform (DHWT) summarization.

The Haar transform decomposes a series into a hierarchy of averages and
details.  With orthonormal scaling the transform preserves Euclidean distances
(Parseval), so the distance computed over any prefix of the coefficients
lower-bounds the true distance, and the remaining energy gives an upper bound.
The Stepwise method stores the coefficients *level by level* and filters the
candidate set one level at a time using both bounds.
"""

from __future__ import annotations

import numpy as np

from .base import Summarizer

__all__ = ["haar_transform", "inverse_haar_transform", "DhwtSummarizer"]


def _padded_length(n: int) -> int:
    """Smallest power of two >= n."""
    length = 1
    while length < n:
        length *= 2
    return length


def haar_transform(series: np.ndarray) -> np.ndarray:
    """Orthonormal Haar wavelet transform of one series or a batch.

    Series whose length is not a power of two are zero-padded; the transform is
    orthonormal so Euclidean distances are preserved on padded inputs (padding
    adds identical zeros to both series being compared).
    """
    arr = np.asarray(series, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    n = arr.shape[1]
    padded = _padded_length(n)
    if padded != n:
        arr = np.pad(arr, ((0, 0), (0, padded - n)))
    out = arr.copy()
    length = padded
    while length > 1:
        half = length // 2
        evens = out[:, 0:length:2]
        odds = out[:, 1:length:2]
        averages = (evens + odds) / np.sqrt(2.0)
        details = (evens - odds) / np.sqrt(2.0)
        out[:, :half] = averages
        out[:, half:length] = details
        length = half
    return out[0] if single else out


def inverse_haar_transform(coefficients: np.ndarray, original_length: int | None = None) -> np.ndarray:
    """Inverse of :func:`haar_transform` (orthonormal)."""
    arr = np.asarray(coefficients, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    padded = arr.shape[1]
    out = arr.copy()
    length = 2
    while length <= padded:
        half = length // 2
        averages = out[:, :half].copy()
        details = out[:, half:length].copy()
        evens = (averages + details) / np.sqrt(2.0)
        odds = (averages - details) / np.sqrt(2.0)
        merged = np.empty((arr.shape[0], length), dtype=np.float64)
        merged[:, 0::2] = evens
        merged[:, 1::2] = odds
        out[:, :length] = merged
        length *= 2
    if original_length is not None:
        out = out[:, :original_length]
    return out[0] if single else out


def level_slices(padded_length: int) -> list[slice]:
    """Coefficient slices per resolution level, coarsest first.

    Level 0 is the single overall-average coefficient; each following level
    doubles the number of detail coefficients.
    """
    slices = [slice(0, 1)]
    start = 1
    width = 1
    while start < padded_length:
        slices.append(slice(start, start + width))
        start += width
        width *= 2
    return slices


class DhwtSummarizer(Summarizer):
    """DHWT summarizer keeping the first ``dimensions`` Haar coefficients."""

    name = "dhwt"

    def __init__(self, series_length: int, coefficients: int = 16) -> None:
        super().__init__(series_length, coefficients)
        self.coefficients = coefficients
        self.padded_length = _padded_length(series_length)

    def transform(self, series: np.ndarray) -> np.ndarray:
        full = haar_transform(series)
        if full.ndim == 1:
            return full[: self.coefficients]
        return full[:, : self.coefficients]

    def transform_full(self, series: np.ndarray) -> np.ndarray:
        """All Haar coefficients (used by Stepwise, which needs every level)."""
        return haar_transform(series)

    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        q = np.asarray(query_summary, dtype=np.float64)
        c = np.asarray(candidate_summary, dtype=np.float64)
        diff = q - c
        return float(np.sqrt(np.dot(diff, diff)))

    def lower_bound_batch(
        self, query_summary: np.ndarray, candidate_summaries: np.ndarray
    ) -> np.ndarray:
        q = np.asarray(query_summary, dtype=np.float64)
        c = np.asarray(candidate_summaries, dtype=np.float64)
        if c.ndim == 1:
            c = c[np.newaxis, :]
        diff = c - q[np.newaxis, :]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    @staticmethod
    def prefix_bounds(
        query_coefficients: np.ndarray,
        candidate_coefficients: np.ndarray,
        prefix: int,
    ) -> tuple[float, float]:
        """(lower, upper) bounds on the true distance using the first ``prefix`` coefficients.

        The lower bound is the distance over the prefix; the upper bound adds
        the worst-case contribution of the remaining coefficients, bounded by
        the energy (norm) of the two tails via the triangle inequality.
        """
        q = np.asarray(query_coefficients, dtype=np.float64)
        c = np.asarray(candidate_coefficients, dtype=np.float64)
        head = q[:prefix] - c[:prefix]
        head_sq = float(np.dot(head, head))
        q_tail = q[prefix:]
        c_tail = c[prefix:]
        tail_norm = float(np.linalg.norm(q_tail) + np.linalg.norm(c_tail))
        lower = float(np.sqrt(head_sq))
        upper = float(np.sqrt(head_sq + tail_norm * tail_norm))
        return lower, upper
