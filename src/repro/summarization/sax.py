"""SAX and iSAX symbolic summarizations.

SAX maps each PAA segment of a z-normalized series to a discrete symbol using
breakpoints that divide the standard normal distribution into equi-probable
regions.  iSAX (indexable SAX) allows each segment to use its own alphabet
cardinality, which is what lets iSAX-family indexes split one segment at a time
by "promoting" it to a finer cardinality.  The MINDIST function between a query
(raw PAA values) and an iSAX word lower-bounds the Euclidean distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Summarizer
from .paa import PaaSummarizer

__all__ = [
    "sax_breakpoints",
    "sax_region_edges",
    "stack_words",
    "symbolize_batch",
    "summarize_stream",
    "group_rows",
    "group_root_words",
    "SaxWord",
    "IsaxSummarizer",
]

_BREAKPOINT_CACHE: dict[int, np.ndarray] = {}
_REGION_EDGE_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _norm_ppf(p: np.ndarray) -> np.ndarray:
    """Inverse CDF of the standard normal (Acklam's rational approximation).

    Implemented locally so the core library only depends on NumPy; accuracy is
    ~1e-9 over the open interval (0, 1), far beyond what breakpoint placement
    needs.
    """
    p = np.asarray(p, dtype=np.float64)
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    plow = 0.02425
    phigh = 1 - plow
    out = np.empty_like(p)

    lower = p < plow
    upper = p > phigh
    middle = ~(lower | upper)

    if np.any(lower):
        q = np.sqrt(-2 * np.log(p[lower]))
        out[lower] = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if np.any(upper):
        q = np.sqrt(-2 * np.log(1 - p[upper]))
        out[upper] = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if np.any(middle):
        q = p[middle] - 0.5
        r = q * q
        out[middle] = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    return out


def sax_breakpoints(cardinality: int) -> np.ndarray:
    """Breakpoints dividing N(0, 1) into ``cardinality`` equi-probable regions.

    Returns an array of ``cardinality - 1`` increasing values.  Cached because
    iSAX evaluates MINDIST against many cardinalities repeatedly.
    """
    if cardinality < 2:
        raise ValueError("cardinality must be at least 2")
    if cardinality not in _BREAKPOINT_CACHE:
        probs = np.arange(1, cardinality) / cardinality
        _BREAKPOINT_CACHE[cardinality] = _norm_ppf(probs)
    return _BREAKPOINT_CACHE[cardinality]


def sax_region_edges(max_cardinality: int) -> tuple[np.ndarray, np.ndarray]:
    """Flattened region-edge table for every power-of-two cardinality.

    Returns ``(edges, offsets)`` such that for a segment with cardinality ``c``
    (a power of two ``<= max_cardinality``) and symbol ``s``, the breakpoint
    interval covered by the symbol is
    ``(edges[offsets[c] + s], edges[offsets[c] + s + 1])``, with ``-inf``/
    ``+inf`` sentinels at the extremes.  This is the lookup structure behind
    the array-native MINDIST kernel: one fancy-indexing gather replaces the
    per-word, per-segment ``segment_region`` calls.
    """
    if max_cardinality < 2 or (max_cardinality & (max_cardinality - 1)) != 0:
        raise ValueError("max_cardinality must be a power of two >= 2")
    cached = _REGION_EDGE_CACHE.get(max_cardinality)
    if cached is None:
        offsets = np.full(max_cardinality + 1, -1, dtype=np.int64)
        pieces = []
        cursor = 0
        card = 2
        while card <= max_cardinality:
            offsets[card] = cursor
            pieces.append(
                np.concatenate(([-np.inf], sax_breakpoints(card), [np.inf]))
            )
            cursor += card + 1
            card *= 2
        cached = (np.concatenate(pieces), offsets)
        _REGION_EDGE_CACHE[max_cardinality] = cached
    return cached


def stack_words(words) -> tuple[np.ndarray, np.ndarray]:
    """Stack iSAX words into ``(symbols, cardinalities)`` integer matrices.

    The matrices feed :meth:`IsaxSummarizer.mindist_paa_to_words_batch`; index
    nodes cache them per child set so the batch kernel never rebuilds them.
    """
    symbols = np.array([w.symbols for w in words], dtype=np.int64)
    cardinalities = np.array([w.cardinalities for w in words], dtype=np.int64)
    return symbols, cardinalities


def _symbolize(paa_values: np.ndarray, cardinality: int) -> np.ndarray:
    """Map PAA values to symbols in ``[0, cardinality)`` (0 = lowest region)."""
    breakpoints = sax_breakpoints(cardinality)
    return np.searchsorted(breakpoints, paa_values, side="left").astype(np.int64)


def symbolize_batch(paa_values: np.ndarray, cardinality: int) -> np.ndarray:
    """Symbols of PAA values at one cardinality, for arrays of any shape.

    The bulk loaders symbolize a whole ``(series, segments)`` PAA matrix (or
    one segment column of it) in a single call — one ``searchsorted`` against
    the cached breakpoints replaces millions of per-series conversions.
    """
    return _symbolize(np.asarray(paa_values, dtype=np.float64), cardinality)


def summarize_stream(
    summarizer: "IsaxSummarizer", blocks, count: int, symbols: bool = False
):
    """Chunked driver for the iSAX bulk-build summaries.

    Consumes ``(slice, float64 block)`` pairs (see
    :meth:`repro.core.storage.SeriesStore.scan_blocks`) and fills the
    ``(count, segments)`` PAA matrix — plus, with ``symbols=True``, the
    full-cardinality symbol matrix ADS+ keeps for SIMS — one chunk at a time.
    Both matrices are tiny next to the raw rows (8 + 8 bytes per segment per
    series), so tree construction holds summaries instead of the collection;
    every value is bitwise identical to the historical whole-collection
    ``transform_batch`` because PAA and symbolization are row-local.

    Returns ``paa`` or ``(paa, symbols)``.
    """
    paa = np.empty((count, summarizer.segments), dtype=np.float64)
    syms = None
    if symbols:
        # Symbols are bounded by the cardinality; the matrix is retained for
        # the index's whole lifetime, so store it at the narrowest safe width.
        dtype = np.int16 if summarizer.cardinality <= 2**15 else np.int64
        syms = np.empty((count, summarizer.segments), dtype=dtype)
    for rows, block in blocks:
        part = summarizer.paa.transform_batch(block)
        paa[rows] = part
        if syms is not None:
            syms[rows] = _symbolize(part, summarizer.cardinality)
    return paa if syms is None else (paa, syms)


def group_root_words(paa: np.ndarray):
    """Group rows by their cardinality-2 root word, bit-packed.

    Yields exactly what ``group_rows(symbolize_batch(paa, 2))`` yields — the
    ``(symbols tuple, ascending row indices)`` groups in lexicographic key
    order — but packs each row's word into one integer key instead of
    materializing and lexsorting a ``(series, segments)`` int64 word matrix:
    the lex order of binary symbol tuples is the numeric order of the packed
    keys (first segment in the most significant bit), and a stable integer
    argsort keeps rows ascending within each group.  At bulk-build scale the
    word matrix plus its lexsort copies dominated transient build memory.
    """
    arr = np.atleast_2d(np.asarray(paa, dtype=np.float64))
    count, segments = arr.shape
    if count == 0:
        return
    if segments > 63:  # pragma: no cover - packed keys no longer fit
        yield from group_rows(symbolize_batch(arr, 2))
        return
    packed = np.zeros(count, dtype=np.int64)
    for j in range(segments):
        np.left_shift(packed, 1, out=packed)
        packed |= _symbolize(arr[:, j], 2)
    order = np.argsort(packed, kind="stable")
    ordered = packed[order]
    change = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
    starts = np.concatenate(([0], change, [count]))
    for start, stop in zip(starts[:-1], starts[1:]):
        bits = int(ordered[start])
        key = tuple((bits >> (segments - 1 - j)) & 1 for j in range(segments))
        yield key, order[start:stop]


def group_rows(rows: np.ndarray):
    """Group identical rows of an integer matrix, yielding position blocks.

    Yields ``(key, indices)`` pairs where ``key`` is the row as a tuple of
    ints and ``indices`` are the (ascending) row numbers carrying that key,
    in lexicographic key order.  This is the array-native partitioning step of
    the bulk loaders: one ``np.lexsort`` replaces a per-series dictionary
    insert loop.  ``np.lexsort`` is stable, so indices stay ascending within
    each group.
    """
    arr = np.atleast_2d(np.asarray(rows, dtype=np.int64))
    if arr.shape[0] == 0:
        return
    order = np.lexsort(arr.T[::-1])
    ordered = arr[order]
    change = np.flatnonzero(np.any(ordered[1:] != ordered[:-1], axis=1)) + 1
    starts = np.concatenate(([0], change, [order.size]))
    for start, stop in zip(starts[:-1], starts[1:]):
        key = tuple(int(v) for v in ordered[start])
        yield key, order[start:stop]


@dataclass(frozen=True)
class SaxWord:
    """An iSAX word: per-segment symbols with per-segment cardinalities."""

    symbols: tuple
    cardinalities: tuple

    def __post_init__(self) -> None:
        if len(self.symbols) != len(self.cardinalities):
            raise ValueError("symbols and cardinalities must have equal length")

    @property
    def segments(self) -> int:
        return len(self.symbols)

    def segment_region(self, segment: int) -> tuple[float, float]:
        """The (low, high) breakpoint interval covered by one segment's symbol."""
        card = self.cardinalities[segment]
        sym = self.symbols[segment]
        breakpoints = sax_breakpoints(card)
        low = -np.inf if sym == 0 else float(breakpoints[sym - 1])
        high = np.inf if sym == card - 1 else float(breakpoints[sym])
        return low, high

    def promote(self, segment: int, paa_value: float) -> "SaxWord":
        """Return a copy with one segment's cardinality doubled.

        ``paa_value`` is the raw PAA value of the series being re-summarized;
        iSAX 2.0/2+ use it to place the series on the correct side of the new
        breakpoint when a node splits.
        """
        new_cards = list(self.cardinalities)
        new_syms = list(self.symbols)
        new_cards[segment] = self.cardinalities[segment] * 2
        new_syms[segment] = int(_symbolize(np.array([paa_value]), new_cards[segment])[0])
        return SaxWord(symbols=tuple(new_syms), cardinalities=tuple(new_cards))

    def prefix_symbol(self, segment: int, cardinality: int) -> int:
        """The symbol of ``segment`` coarsened to a lower ``cardinality``.

        iSAX cardinalities are powers of two, so coarsening is a right shift.
        """
        own = self.cardinalities[segment]
        if cardinality > own:
            raise ValueError("cannot coarsen to a higher cardinality")
        shift = int(np.log2(own // cardinality))
        return int(self.symbols[segment]) >> shift


class IsaxSummarizer(Summarizer):
    """iSAX summarizer: PAA + per-segment symbolization with MINDIST.

    Parameters
    ----------
    series_length:
        Length of the series being summarized.
    segments:
        Number of PAA segments (word length); the paper uses 16.
    cardinality:
        Maximum (full-resolution) cardinality per segment; the paper's
        SAX-based methods use 256.
    """

    name = "isax"

    def __init__(
        self, series_length: int, segments: int = 16, cardinality: int = 256
    ) -> None:
        super().__init__(series_length, segments)
        if cardinality < 2 or (cardinality & (cardinality - 1)) != 0:
            raise ValueError("cardinality must be a power of two >= 2")
        self.segments = segments
        self.cardinality = cardinality
        self.paa = PaaSummarizer(series_length, segments)
        self._segment_width = series_length / segments

    # -- transforms -----------------------------------------------------------
    def transform(self, series: np.ndarray) -> np.ndarray:
        """Full-cardinality symbols of one series (or a batch) as integer arrays."""
        paa = self.paa.transform_batch(series) if np.asarray(series).ndim == 2 else self.paa.transform(series)
        return _symbolize(paa, self.cardinality)

    def transform_batch(self, series: np.ndarray) -> np.ndarray:
        paa = self.paa.transform_batch(series)
        return _symbolize(paa, self.cardinality)

    def word(self, series: np.ndarray, cardinalities: tuple | None = None) -> SaxWord:
        """iSAX word of one series at the given per-segment cardinalities."""
        paa = self.paa.transform(series)
        return self.word_from_paa(paa, cardinalities)

    def word_from_paa(
        self, paa: np.ndarray, cardinalities: tuple | None = None
    ) -> SaxWord:
        cards = cardinalities or tuple([self.cardinality] * self.segments)
        symbols = tuple(
            int(_symbolize(np.array([paa[j]]), cards[j])[0]) for j in range(self.segments)
        )
        return SaxWord(symbols=symbols, cardinalities=tuple(cards))

    # -- distances -------------------------------------------------------------
    def mindist_paa_to_word(self, query_paa: np.ndarray, word: SaxWord) -> float:
        """MINDIST between a query's PAA values and an iSAX word (lower bound)."""
        q = np.asarray(query_paa, dtype=np.float64)
        total = 0.0
        for j in range(word.segments):
            low, high = word.segment_region(j)
            value = q[j]
            if value < low:
                gap = low - value
            elif value > high:
                gap = value - high
            else:
                gap = 0.0
            total += gap * gap
        return float(np.sqrt(self._segment_width * total))

    def mindist_paa_to_words_batch(
        self,
        query_paa: np.ndarray,
        symbols: np.ndarray,
        cardinalities: np.ndarray,
    ) -> np.ndarray:
        """MINDIST between a query's PAA values and many iSAX words at once.

        ``symbols`` and ``cardinalities`` are ``(words, segments)`` integer
        matrices (see :func:`stack_words`); cardinalities may differ per word
        *and* per segment, exactly as in :meth:`mindist_paa_to_word`.  One call
        scores the query against every word — e.g. all children of an index
        node — through a single gather into the flattened region-edge table,
        replacing the per-word Python loop.  Matches the scalar kernel to
        floating-point accuracy.
        """
        q = np.asarray(query_paa, dtype=np.float64)
        syms = np.atleast_2d(np.asarray(symbols, dtype=np.int64))
        cards = np.atleast_2d(np.asarray(cardinalities, dtype=np.int64))
        if syms.shape != cards.shape:
            raise ValueError("symbols and cardinalities must have equal shapes")
        edges, offsets = sax_region_edges(self.cardinality)
        base = offsets[cards] + syms
        low = edges[base]
        high = edges[base + 1]
        below = np.maximum(low - q[np.newaxis, :], 0.0)   # -inf low -> 0
        above = np.maximum(q[np.newaxis, :] - high, 0.0)  # +inf high -> 0
        gap = below + above  # at most one side is non-zero per segment
        return np.sqrt(self._segment_width * np.einsum("ij,ij->i", gap, gap))

    def mindist_symbols(
        self, query_symbols: np.ndarray, word: SaxWord
    ) -> float:
        """MINDIST between a full-cardinality query word and an iSAX word.

        Used by ADS+ which keeps only the symbolic representation of the query
        candidates; the query itself is still compared via its PAA values when
        available (tighter), so this variant is the symbol-only fallback.
        """
        breakpoints = sax_breakpoints(self.cardinality)
        total = 0.0
        for j in range(word.segments):
            low, high = word.segment_region(j)
            sym = int(query_symbols[j])
            # representative value of the query cell: its region midpoint proxy
            q_low = -np.inf if sym == 0 else breakpoints[sym - 1]
            q_high = np.inf if sym == self.cardinality - 1 else breakpoints[sym]
            if q_high < low:
                gap = low - q_high
            elif q_low > high:
                gap = q_low - high
            else:
                gap = 0.0
            total += gap * gap
        return float(np.sqrt(self._segment_width * total))

    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        """Lower bound between a query PAA vector and candidate full-resolution symbols."""
        word = SaxWord(
            symbols=tuple(int(s) for s in np.asarray(candidate_summary)),
            cardinalities=tuple([self.cardinality] * self.segments),
        )
        return self.mindist_paa_to_word(np.asarray(query_summary, dtype=np.float64), word)

    def lower_bound_batch(
        self, query_summary: np.ndarray, candidate_summaries: np.ndarray
    ) -> np.ndarray:
        """Vectorized MINDIST between a query PAA vector and many symbol rows.

        Integer ``candidate_summaries`` are used at their stored width — ADS+
        keeps its full-resolution symbol matrix at int16, and forcing int64
        here would copy the whole matrix on every SIMS query.
        """
        q = np.asarray(query_summary, dtype=np.float64)
        syms = np.asarray(candidate_summaries)
        if not np.issubdtype(syms.dtype, np.integer):
            syms = syms.astype(np.int64)
        if syms.ndim == 1:
            syms = syms[np.newaxis, :]
        breakpoints = sax_breakpoints(self.cardinality)
        # region bounds per candidate cell
        low = np.where(syms == 0, -np.inf, breakpoints[np.clip(syms - 1, 0, None)])
        high = np.where(
            syms == self.cardinality - 1,
            np.inf,
            breakpoints[np.clip(syms, 0, len(breakpoints) - 1)],
        )
        below = np.clip(low - q[np.newaxis, :], 0.0, None)
        above = np.clip(q[np.newaxis, :] - high, 0.0, None)
        gap = np.where(np.isfinite(below), below, 0.0) + np.where(
            np.isfinite(above), above, 0.0
        )
        return np.sqrt(self._segment_width * np.sum(gap * gap, axis=1))
