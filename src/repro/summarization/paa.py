"""Piecewise Aggregate Approximation (PAA).

PAA divides a series into equal-length segments and represents each segment by
its mean value.  The distance between two PAA representations, scaled by the
square root of the segment width, lower-bounds the Euclidean distance between
the original series (Keogh et al., 2001).  PAA is the substrate for SAX/iSAX
and for the R*-tree variant evaluated in the paper.
"""

from __future__ import annotations

import numpy as np

from .base import Summarizer

__all__ = ["PaaSummarizer", "paa_transform", "paa_lower_bound"]


def segment_boundaries(series_length: int, segments: int) -> np.ndarray:
    """Start/stop boundaries that split ``series_length`` points into segments.

    When the length is not divisible by the number of segments, the remainder is
    spread over the leading segments (so segment widths differ by at most one).
    """
    if segments <= 0 or segments > series_length:
        raise ValueError("invalid number of segments")
    base = series_length // segments
    remainder = series_length % segments
    widths = np.full(segments, base, dtype=np.int64)
    widths[:remainder] += 1
    boundaries = np.zeros(segments + 1, dtype=np.int64)
    boundaries[1:] = np.cumsum(widths)
    return boundaries


def paa_transform(series: np.ndarray, segments: int) -> np.ndarray:
    """PAA transform of one series (1-d) or a batch (2-d)."""
    arr = np.asarray(series, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    n = arr.shape[1]
    boundaries = segment_boundaries(n, segments)
    out = np.empty((arr.shape[0], segments), dtype=np.float64)
    for j in range(segments):
        out[:, j] = arr[:, boundaries[j] : boundaries[j + 1]].mean(axis=1)
    return out[0] if single else out


def paa_lower_bound(
    query_paa: np.ndarray, candidate_paa: np.ndarray, series_length: int
) -> float:
    """Lower bound on the Euclidean distance from two PAA representations."""
    q = np.asarray(query_paa, dtype=np.float64)
    c = np.asarray(candidate_paa, dtype=np.float64)
    width = series_length / q.shape[0]
    diff = q - c
    return float(np.sqrt(width * np.dot(diff, diff)))


class PaaSummarizer(Summarizer):
    """PAA summarizer with the standard lower-bounding distance."""

    name = "paa"

    def __init__(self, series_length: int, segments: int = 16) -> None:
        super().__init__(series_length, segments)
        self.segments = segments
        self._boundaries = segment_boundaries(series_length, segments)
        self._widths = np.diff(self._boundaries).astype(np.float64)

    def transform(self, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim == 2:
            return self.transform_batch(arr)
        if arr.shape[0] != self.series_length:
            raise ValueError(
                f"series length {arr.shape[0]} != configured {self.series_length}"
            )
        out = np.empty(self.segments, dtype=np.float64)
        for j in range(self.segments):
            out[j] = arr[self._boundaries[j] : self._boundaries[j + 1]].mean()
        return out

    def transform_batch(self, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim == 1:
            return self.transform(arr)[np.newaxis, :]
        out = np.empty((arr.shape[0], self.segments), dtype=np.float64)
        for j in range(self.segments):
            out[:, j] = arr[:, self._boundaries[j] : self._boundaries[j + 1]].mean(axis=1)
        return out

    def lower_bound(self, query_summary: np.ndarray, candidate_summary: np.ndarray) -> float:
        q = np.asarray(query_summary, dtype=np.float64)
        c = np.asarray(candidate_summary, dtype=np.float64)
        diff = q - c
        return float(np.sqrt(np.sum(self._widths * diff * diff)))

    def lower_bound_batch(
        self, query_summary: np.ndarray, candidate_summaries: np.ndarray
    ) -> np.ndarray:
        q = np.asarray(query_summary, dtype=np.float64)
        c = np.asarray(candidate_summaries, dtype=np.float64)
        if c.ndim == 1:
            c = c[np.newaxis, :]
        diff = c - q[np.newaxis, :]
        return np.sqrt(np.sum(self._widths[np.newaxis, :] * diff * diff, axis=1))

    def mindist_to_rectangle(
        self, query_summary: np.ndarray, lower: np.ndarray, upper: np.ndarray
    ) -> float:
        """Lower bound from a query to a PAA bounding rectangle (R*-tree MBR)."""
        q = np.asarray(query_summary, dtype=np.float64)
        lo = np.asarray(lower, dtype=np.float64)
        hi = np.asarray(upper, dtype=np.float64)
        below = np.clip(lo - q, 0.0, None)
        above = np.clip(q - hi, 0.0, None)
        gap = np.maximum(below, above)
        return float(np.sqrt(np.sum(self._widths * gap * gap)))
