"""Synthetic analogues of the paper's four real datasets.

The paper evaluates on Seismic (IRIS), Astro (celestial light curves), SALD
(MRI), and Deep1B (CNN embedding vectors).  Those collections are not
redistributable here, so this module builds synthetic stand-ins that mimic the
*summarizability* of each domain — the property that actually drives the
paper's per-dataset differences (pruning ratio and TLB vary across datasets
because some domains are easier to summarize than others):

* ``seismic_like`` — band-limited noise with occasional high-energy bursts
  (events), moderately autocorrelated.
* ``astro_like`` — smooth periodic light curves with transient dips/flares,
  highly autocorrelated (easy to summarize).
* ``sald_like`` — smooth low-frequency fMRI-style signals (very easy to
  summarize).
* ``deep1b_like`` — nearly uncorrelated embedding-style vectors (hard to
  summarize; lowest pruning, the regime where serial scans win).
"""

from __future__ import annotations

import numpy as np

from ..core.series import Dataset, znormalize

__all__ = [
    "seismic_like",
    "astro_like",
    "sald_like",
    "deep1b_like",
    "real_like_dataset",
    "REAL_DATASET_NAMES",
]

REAL_DATASET_NAMES = ("seismic", "astro", "sald", "deep1b")


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Moving-average smoothing along the last axis."""
    if window <= 1:
        return values
    kernel = np.ones(window) / window
    out = np.empty_like(values)
    for i in range(values.shape[0]):
        out[i] = np.convolve(values[i], kernel, mode="same")
    return out


def seismic_like(count: int, length: int = 256, seed: int | None = None) -> Dataset:
    """Seismic-instrument-like series: background noise plus bursty events."""
    rng = np.random.default_rng(seed)
    background = _smooth(rng.standard_normal((count, length)), window=4)
    series = background.copy()
    # Roughly half the series contain an "event": a localized high-energy burst.
    event_mask = rng.random(count) < 0.5
    for i in np.flatnonzero(event_mask):
        center = rng.integers(length // 4, 3 * length // 4)
        width = rng.integers(max(4, length // 32), max(8, length // 8))
        amplitude = rng.uniform(3.0, 8.0)
        positions = np.arange(length)
        envelope = np.exp(-0.5 * ((positions - center) / width) ** 2)
        series[i] += amplitude * envelope * rng.standard_normal(length)
    return Dataset(values=znormalize(series), name="seismic", normalized=True)


def astro_like(count: int, length: int = 256, seed: int | None = None) -> Dataset:
    """Light-curve-like series: smooth periodic signal plus transients."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 1, length)
    periods = rng.uniform(0.05, 0.5, count)
    phases = rng.uniform(0, 2 * np.pi, count)
    amplitudes = rng.uniform(0.5, 2.0, count)
    series = amplitudes[:, None] * np.sin(2 * np.pi * t[None, :] / periods[:, None] + phases[:, None])
    series += 0.15 * rng.standard_normal((count, length))
    # Occasional transit-like dips.
    dip_mask = rng.random(count) < 0.3
    for i in np.flatnonzero(dip_mask):
        start = rng.integers(0, length - length // 8)
        series[i, start : start + length // 8] -= rng.uniform(1.0, 3.0)
    return Dataset(values=znormalize(series), name="astro", normalized=True)


def sald_like(count: int, length: int = 128, seed: int | None = None) -> Dataset:
    """fMRI-like series: very smooth, low-frequency signals."""
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((count, length))
    smooth = _smooth(raw, window=max(4, length // 16))
    drift = np.cumsum(rng.standard_normal((count, length)) * 0.05, axis=1)
    return Dataset(values=znormalize(smooth + drift), name="sald", normalized=True)


def deep1b_like(count: int, length: int = 96, seed: int | None = None) -> Dataset:
    """Embedding-vector-like series: high-entropy, weakly correlated dimensions."""
    rng = np.random.default_rng(seed)
    # A CNN descriptor has mild global structure (a few dominant directions)
    # but is mostly isotropic, which makes it hard to summarize with few
    # coefficients - reproducing the low pruning ratios of Deep1B.
    basis = rng.standard_normal((8, length)) / np.sqrt(length)
    weights = rng.standard_normal((count, 8)) * 0.5
    structured = weights @ basis
    noise = rng.standard_normal((count, length))
    return Dataset(values=znormalize(structured + noise), name="deep1b", normalized=True)


def real_like_dataset(
    name: str, count: int, length: int | None = None, seed: int | None = None
) -> Dataset:
    """Build a real-dataset analogue by name (``seismic``/``astro``/``sald``/``deep1b``)."""
    key = name.lower()
    defaults = {"seismic": 256, "astro": 256, "sald": 128, "deep1b": 96}
    if key not in defaults:
        raise KeyError(f"unknown real dataset analogue {name!r}; use one of {REAL_DATASET_NAMES}")
    length = length or defaults[key]
    builders = {
        "seismic": seismic_like,
        "astro": astro_like,
        "sald": sald_like,
        "deep1b": deep1b_like,
    }
    return builders[key](count, length, seed)
