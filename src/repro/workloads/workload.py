"""Workload assembly: the query sets used by the paper's experiments.

Two kinds of workloads exist:

* ``Synth-Rand`` — queries drawn from the same random-walk generator as the
  dataset, with a different seed;
* ``*-Ctrl`` — controlled-difficulty workloads built by extracting series from
  the dataset and adding progressively larger noise (see
  :mod:`repro.workloads.noise`).

The paper runs 100 queries per workload and extrapolates 10k-query scenarios by
dropping the 5 best and 5 worst queries and multiplying the mean of the rest;
:func:`extrapolate_total` implements that procedure.
"""

from __future__ import annotations

import numpy as np

from ..core.queries import QueryWorkload
from ..core.series import Dataset
from .generators import random_walk
from .noise import controlled_workload

__all__ = [
    "synth_rand_workload",
    "synth_ctrl_workload",
    "real_ctrl_workload",
    "extrapolate_total",
]


def synth_rand_workload(
    length: int, count: int = 100, seed: int = 2018, k: int = 1
) -> QueryWorkload:
    """Random-walk query workload (the paper's Synth-Rand)."""
    queries = random_walk(count, length, seed=seed, normalize=True)
    return QueryWorkload.from_array(queries, name="synth-rand", k=k)


def synth_ctrl_workload(
    dataset: Dataset, count: int = 100, seed: int = 2018, k: int = 1
) -> QueryWorkload:
    """Controlled-difficulty workload over a synthetic dataset (Synth-Ctrl)."""
    return controlled_workload(dataset, count=count, seed=seed, name="synth-ctrl", k=k)


def real_ctrl_workload(
    dataset: Dataset, count: int = 100, seed: int = 2018, k: int = 1
) -> QueryWorkload:
    """Controlled-difficulty workload over a real-dataset analogue (``<name>-Ctrl``)."""
    return controlled_workload(
        dataset, count=count, seed=seed, name=f"{dataset.name}-ctrl", k=k
    )


def extrapolate_total(
    per_query_values: np.ndarray | list[float],
    target_queries: int = 10_000,
    trim: int = 5,
) -> float:
    """Extrapolate a total cost for a large workload (paper §4.2 Procedure).

    Drops the ``trim`` smallest and largest per-query values, averages the
    rest, and multiplies by ``target_queries``.
    """
    values = np.sort(np.asarray(per_query_values, dtype=np.float64))
    if values.size == 0:
        return 0.0
    if values.size > 2 * trim:
        values = values[trim:-trim]
    return float(values.mean() * target_queries)
