"""Synthetic data series generators.

The paper's synthetic datasets are random walks: cumulative sums of standard
normal steps, a model classically used for stock-price-like series.  The
generator here is seeded so every benchmark is reproducible, and produces
z-normalized output by default (the paper normalizes all datasets in advance).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.series import Dataset, SeriesFileWriter, znormalize

__all__ = [
    "random_walk",
    "random_walk_dataset",
    "random_walk_to_file",
    "gaussian_noise",
]


def random_walk(
    count: int,
    length: int,
    seed: int | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Generate ``count`` random-walk series of ``length`` points.

    Steps are drawn from a standard normal distribution and accumulated; the
    result is optionally z-normalized per series.
    """
    if count <= 0 or length <= 0:
        raise ValueError("count and length must be positive")
    rng = np.random.default_rng(seed)
    steps = rng.standard_normal((count, length))
    walks = np.cumsum(steps, axis=1)
    if normalize:
        return znormalize(walks)
    return walks.astype(np.float32)


def gaussian_noise(
    count: int, length: int, seed: int | None = None, normalize: bool = True
) -> np.ndarray:
    """Pure white-noise series (hard to summarize; used for stress tests)."""
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal((count, length))
    if normalize:
        return znormalize(noise)
    return noise.astype(np.float32)


def random_walk_dataset(
    count: int,
    length: int,
    seed: int | None = None,
    name: str = "synthetic-random-walk",
) -> Dataset:
    """A :class:`Dataset` of z-normalized random-walk series."""
    values = random_walk(count, length, seed=seed, normalize=True)
    return Dataset(values=values, name=name, normalized=True, metadata={"seed": seed})


def random_walk_to_file(
    path,
    count: int,
    length: int,
    seed: int | None = None,
    chunk_size: int = 65536,
    name: str | None = None,
    normalize: bool = True,
    compress: str | None = None,
) -> Dataset:
    """Synthesize a random-walk dataset straight to ``path``, chunk by chunk.

    Only ``chunk_size`` series are ever held in memory, so the written
    collection can be far larger than RAM; the returned :class:`Dataset` is
    the file reopened lazily (:meth:`Dataset.from_file`), ready to serve
    out-of-core.  Generator draws consume the seeded bit stream sequentially,
    so for a given ``seed`` the file contents are *identical* to
    ``random_walk(count, length, seed=seed)`` for every ``chunk_size``.

    ``compress`` (``"int8"``/``"int16"``) writes the compressed quantized
    ``.rcz`` format instead — required (and implied, defaulting to int8) when
    ``path`` has the ``.rcz`` suffix.  Quantization is lossy relative to the
    generated floats; the reopened dataset serves the stored (dequantized)
    values.
    """
    from ..core.quantize import RCZ_SUFFIX, CompressedFileWriter

    if count <= 0 or length <= 0:
        raise ValueError("count and length must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    path = Path(path)
    is_rcz = path.suffix.lower() == RCZ_SUFFIX
    if compress is None and is_rcz:
        compress = "int8"
    if compress is not None and not is_rcz:
        raise ValueError(
            f"compress={compress!r} writes the .rcz format; give the output the "
            f"{RCZ_SUFFIX} suffix so readers recognize it"
        )
    rng = np.random.default_rng(seed)
    if compress is not None:
        writer = CompressedFileWriter(path, length=length, qdtype=compress)
    else:
        writer = SeriesFileWriter(path, length=length)
    with writer:
        remaining = count
        while remaining > 0:
            rows = min(chunk_size, remaining)
            walks = np.cumsum(rng.standard_normal((rows, length)), axis=1)
            writer.append(znormalize(walks) if normalize else walks.astype(np.float32))
            remaining -= rows
    return Dataset.from_file(
        path,
        length=length,
        name=name or "synthetic-random-walk",
        normalized=normalize,
        metadata={"seed": seed},
    )
