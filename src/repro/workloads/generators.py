"""Synthetic data series generators.

The paper's synthetic datasets are random walks: cumulative sums of standard
normal steps, a model classically used for stock-price-like series.  The
generator here is seeded so every benchmark is reproducible, and produces
z-normalized output by default (the paper normalizes all datasets in advance).
"""

from __future__ import annotations

import numpy as np

from ..core.series import Dataset, znormalize

__all__ = ["random_walk", "random_walk_dataset", "gaussian_noise"]


def random_walk(
    count: int,
    length: int,
    seed: int | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Generate ``count`` random-walk series of ``length`` points.

    Steps are drawn from a standard normal distribution and accumulated; the
    result is optionally z-normalized per series.
    """
    if count <= 0 or length <= 0:
        raise ValueError("count and length must be positive")
    rng = np.random.default_rng(seed)
    steps = rng.standard_normal((count, length))
    walks = np.cumsum(steps, axis=1)
    if normalize:
        return znormalize(walks)
    return walks.astype(np.float32)


def gaussian_noise(
    count: int, length: int, seed: int | None = None, normalize: bool = True
) -> np.ndarray:
    """Pure white-noise series (hard to summarize; used for stress tests)."""
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal((count, length))
    if normalize:
        return znormalize(noise)
    return noise.astype(np.float32)


def random_walk_dataset(
    count: int,
    length: int,
    seed: int | None = None,
    name: str = "synthetic-random-walk",
) -> Dataset:
    """A :class:`Dataset` of z-normalized random-walk series."""
    values = random_walk(count, length, seed=seed, normalize=True)
    return Dataset(values=values, name=name, normalized=True, metadata={"seed": seed})
