"""Subsequence-matching support via conversion to whole matching.

The paper's scope is whole matching, but it spells out (§2) how subsequence
matching (SM) queries reduce to whole matching (WM): chop every long candidate
series into overlapping subsequences of the query length, build a WM collection
from those, and remember which (series, offset) each subsequence came from.
This module implements that conversion so any of the library's ten methods can
answer subsequence queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.series import SERIES_DTYPE, Dataset, znormalize

__all__ = ["sliding_windows", "SubsequenceMapping", "subsequence_collection"]


def sliding_windows(series: np.ndarray, window: int, step: int = 1) -> np.ndarray:
    """All windows of length ``window`` taken every ``step`` points of one series.

    Returns an array of shape ``(num_windows, window)``; raises when the series
    is shorter than the window.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("sliding_windows expects a single one-dimensional series")
    if window <= 0 or step <= 0:
        raise ValueError("window and step must be positive")
    if arr.shape[0] < window:
        raise ValueError(
            f"series of length {arr.shape[0]} is shorter than the window {window}"
        )
    starts = np.arange(0, arr.shape[0] - window + 1, step)
    return np.vstack([arr[s : s + window] for s in starts])


@dataclass
class SubsequenceMapping:
    """Maps rows of the converted WM collection back to their origin.

    Attributes
    ----------
    source_ids:
        For every subsequence, the index of the long series it was cut from.
    offsets:
        For every subsequence, its starting offset within that series.
    window:
        The subsequence (query) length.
    """

    source_ids: np.ndarray
    offsets: np.ndarray
    window: int

    def locate(self, position: int) -> tuple[int, int]:
        """The (series index, offset) a WM answer position corresponds to."""
        return int(self.source_ids[position]), int(self.offsets[position])

    def __len__(self) -> int:
        return int(self.source_ids.shape[0])


def subsequence_collection(
    long_series: list[np.ndarray] | np.ndarray,
    window: int,
    step: int = 1,
    normalize: bool = True,
    name: str = "subsequences",
) -> tuple[Dataset, SubsequenceMapping]:
    """Convert long series into a whole-matching collection of subsequences.

    Parameters
    ----------
    long_series:
        A list of one-dimensional series (they may have different lengths), or
        a 2-d array of equal-length series.
    window:
        Subsequence length (must equal the length of the queries that will be
        asked).
    step:
        Stride between consecutive subsequences (1 reproduces the classic
        overlapping conversion; larger values trade recall of the *positions*
        for a smaller collection, answers remain exact for the retained set).
    normalize:
        Z-normalize every subsequence (the usual setting for similarity search
        on normalized data).

    Returns
    -------
    (dataset, mapping):
        The WM dataset plus the bookkeeping needed to translate answer
        positions back into (series, offset) pairs.
    """
    if isinstance(long_series, np.ndarray) and long_series.ndim == 2:
        series_list = [row for row in long_series]
    else:
        series_list = [np.asarray(s) for s in long_series]
    if not series_list:
        raise ValueError("at least one long series is required")

    chunks = []
    source_ids = []
    offsets = []
    for series_id, series in enumerate(series_list):
        windows = sliding_windows(series, window, step)
        chunks.append(windows)
        starts = np.arange(0, np.asarray(series).shape[0] - window + 1, step)
        source_ids.append(np.full(starts.shape[0], series_id, dtype=np.int64))
        offsets.append(starts.astype(np.int64))

    values = np.vstack(chunks)
    if normalize:
        values = znormalize(values)
    dataset = Dataset(
        values=values.astype(SERIES_DTYPE), name=name, normalized=normalize
    )
    mapping = SubsequenceMapping(
        source_ids=np.concatenate(source_ids),
        offsets=np.concatenate(offsets),
        window=window,
    )
    return dataset, mapping
