"""Dataset generators and query workloads used by the evaluation."""

from .generators import (
    gaussian_noise,
    random_walk,
    random_walk_dataset,
    random_walk_to_file,
)
from .noise import controlled_workload, label_by_difficulty, noisy_queries
from .real_like import (
    REAL_DATASET_NAMES,
    astro_like,
    deep1b_like,
    real_like_dataset,
    sald_like,
    seismic_like,
)
from .subsequence import SubsequenceMapping, sliding_windows, subsequence_collection
from .workload import (
    extrapolate_total,
    real_ctrl_workload,
    synth_ctrl_workload,
    synth_rand_workload,
)

__all__ = [
    "random_walk",
    "random_walk_dataset",
    "random_walk_to_file",
    "gaussian_noise",
    "controlled_workload",
    "noisy_queries",
    "label_by_difficulty",
    "REAL_DATASET_NAMES",
    "seismic_like",
    "astro_like",
    "sald_like",
    "deep1b_like",
    "real_like_dataset",
    "synth_rand_workload",
    "synth_ctrl_workload",
    "real_ctrl_workload",
    "extrapolate_total",
    "sliding_windows",
    "subsequence_collection",
    "SubsequenceMapping",
]
