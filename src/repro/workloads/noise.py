"""Controlled-difficulty query synthesis.

The paper's controlled workloads (Synth-Ctrl, Astro-Ctrl, ...) are built by
extracting series from the dataset and adding progressively larger amounts of
noise: the more noise, the farther the query drifts from its original nearest
neighbor and the harder it becomes to prune (lower pruning ratio, "harder"
query).  This module implements that procedure and the easy/hard labelling
used by Table 2.
"""

from __future__ import annotations

import numpy as np

from ..core.queries import KnnQuery, QueryWorkload
from ..core.series import Dataset, znormalize

__all__ = ["noisy_queries", "controlled_workload", "label_by_difficulty"]


def noisy_queries(
    dataset: Dataset,
    count: int,
    noise_levels: np.ndarray | list[float] | None = None,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Extract ``count`` series from the dataset and add increasing noise.

    Returns ``(queries, noise_levels)`` where queries are z-normalized and the
    i-th query was perturbed with Gaussian noise of standard deviation
    ``noise_levels[i]`` (relative to the unit variance of normalized series).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    if noise_levels is None:
        # Progressively larger noise: from near-duplicates to heavily distorted.
        noise_levels = np.linspace(0.0, 2.0, count)
    levels = np.asarray(noise_levels, dtype=np.float64)
    if levels.shape[0] != count:
        raise ValueError("noise_levels must have one entry per query")
    base = dataset.sample(count, rng=rng).astype(np.float64)
    noise = rng.standard_normal(base.shape)
    queries = base + levels[:, np.newaxis] * noise
    return znormalize(queries), levels


def controlled_workload(
    dataset: Dataset,
    count: int = 100,
    seed: int | None = None,
    name: str | None = None,
    k: int = 1,
) -> QueryWorkload:
    """A controlled-difficulty workload in the style of the paper's ``*-Ctrl`` sets."""
    queries, levels = noisy_queries(dataset, count, seed=seed)
    name = name or f"{dataset.name}-ctrl"
    labels = ["easy" if lvl <= np.median(levels) else "hard" for lvl in levels]
    knn_queries = [
        KnnQuery(series=q, k=k, label=label) for q, label in zip(queries, labels)
    ]
    return QueryWorkload(name=name, queries=knn_queries)


def label_by_difficulty(
    workload: QueryWorkload, pruning_ratios: np.ndarray, easiest: int = 20, hardest: int = 20
) -> dict:
    """Label queries as easy/hard from their average pruning ratio (paper §4.3.3).

    A query is easy when it achieves a high average pruning ratio across
    methods and hard when pruning is poor.  Returns a dict with the indices of
    the ``easiest`` and ``hardest`` queries.
    """
    ratios = np.asarray(pruning_ratios, dtype=np.float64)
    if ratios.shape[0] != len(workload):
        raise ValueError("one pruning ratio per query is required")
    order = np.argsort(-ratios, kind="stable")
    return {
        "easy": order[:easiest].tolist(),
        "hard": order[-hardest:].tolist(),
    }
