"""Command line interface for the library.

Provides a small set of subcommands so the common workflows can be driven
without writing Python::

    python -m repro methods                     # list the available methods
    python -m repro recommend --gb 100 --length 256
    python -m repro run --method dstree --count 5000 --length 128 --queries 10
    python -m repro compare --methods dstree,va+file,ucr-suite --count 2000
    python -m repro synth --out walks.npy --count 1000000 --length 128
    python -m repro run --method isax2+ --dataset-file walks.npy --backend mmap

The ``run`` and ``compare`` commands generate a seeded random-walk dataset (or
one of the real-dataset analogues), build the requested method(s), answer a
query workload, and print the same measures the benchmark harness reports.
``synth`` streams a dataset to disk chunk-by-chunk (collections larger than
RAM are fine), and ``--dataset-file``/``--backend mmap`` serve such files
memory-mapped, never materializing the collection.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from contextlib import ExitStack
from pathlib import Path

from .core.backends import BACKEND_KINDS, RAW_SUFFIXES
from .core.registry import available_methods
from .core.engine import recommend_method
from .core.series import Dataset
from .evaluation.hardware import PLATFORMS
from .evaluation.reporting import render_table
from .evaluation.runner import run_experiment
from .evaluation.scenarios import best_method_per_scenario
from .workloads.generators import random_walk_dataset
from .workloads.real_like import REAL_DATASET_NAMES, real_like_dataset
from .workloads.workload import synth_ctrl_workload, synth_rand_workload

__all__ = ["main", "build_parser"]

#: leaf-size defaults used by the CLI when the user does not override them.
_DEFAULT_PARAMS = {
    "ads+": {"leaf_capacity": 100},
    "dstree": {"leaf_capacity": 100},
    "isax2+": {"leaf_capacity": 100},
    "sfa-trie": {"leaf_capacity": 500},
    "m-tree": {"node_capacity": 16},
    "r*-tree": {"leaf_capacity": 50},
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data series similarity search (Lernaean Hydra reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list the available similarity-search methods")

    rec = sub.add_parser("recommend", help="recommend a method for a dataset shape")
    rec.add_argument("--gb", type=float, required=True, help="dataset size in GB")
    rec.add_argument("--length", type=int, required=True, help="series length")
    rec.add_argument("--queries", type=int, default=10_000, help="expected query count")

    run = sub.add_parser("run", help="build one method and answer a workload")
    _add_dataset_arguments(run)
    run.add_argument(
        "--method",
        required=True,
        help="method name (see 'methods'); prefix with 'sharded:' for the "
        "partition-parallel wrapper (e.g. sharded:isax2+)",
    )
    run.add_argument("--leaf-size", type=int, default=None, help="leaf capacity override")
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partitions for a 'sharded:*' method (default: the worker count)",
    )
    run.add_argument(
        "--allow-partial",
        action="store_true",
        help="sharded methods only: drop shards that fail permanently and "
        "return a degraded answer (flagged in the result row) instead of "
        "failing the query",
    )
    run.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sharded methods only: per-query time budget; shard tasks not "
        "finished in time are dropped (requires --allow-partial)",
    )

    compare = sub.add_parser("compare", help="compare several methods on one dataset")
    _add_dataset_arguments(compare)
    compare.add_argument(
        "--methods",
        default="dstree,va+file,ucr-suite",
        help="comma-separated method names ('sharded:<name>' wraps any of them)",
    )

    synth = sub.add_parser(
        "synth",
        help="stream a synthetic dataset to a file (chunked writes: the "
        "collection can be larger than RAM)",
    )
    synth.add_argument(
        "--out",
        required=True,
        help="output path (.npy, .f32/.raw/.bin for headerless raw float32, or "
        ".rcz for the compressed quantized-block format)",
    )
    synth.add_argument("--count", type=int, required=True, help="number of series")
    synth.add_argument("--length", type=int, required=True, help="series length")
    synth.add_argument("--seed", type=int, default=2018, help="random seed")
    synth.add_argument(
        "--chunk-size",
        type=int,
        default=65536,
        help="series generated per chunk (bounds peak memory)",
    )
    synth.add_argument(
        "--compress",
        default=None,
        choices=("int8", "int16"),
        help="write the compressed quantized .rcz format at this precision "
        "(requires a .rcz --out; a .rcz --out alone defaults to int8)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="stream rows into a growable store directory (WAL-backed, "
        "crash-consistent: every acked batch survives a process kill)",
    )
    ingest.add_argument(
        "--store",
        required=True,
        help="growable store directory (created when absent; reopening "
        "replays the write-ahead log and reports what recovery found)",
    )
    ingest.add_argument(
        "--count", type=int, required=True, help="rows to ingest this run"
    )
    ingest.add_argument(
        "--length",
        type=int,
        default=None,
        help="series length (required when creating a new store; validated "
        "against the store manifest otherwise)",
    )
    ingest.add_argument("--seed", type=int, default=2018, help="random seed")
    ingest.add_argument(
        "--batch-rows",
        type=int,
        default=128,
        help="rows per extend() batch — one WAL record, one fsync, one ack",
    )
    ingest.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="BATCHES",
        help="seal the tail into a segment file every N batches "
        "(0: only at the end)",
    )
    ingest.add_argument(
        "--no-final-checkpoint",
        action="store_true",
        help="leave the ingested tail in the WAL (recovery will replay it)",
    )
    ingest.add_argument(
        "--verify",
        action="store_true",
        help="verify every sealed segment against its .crc sidecar after "
        "recovery, before ingesting",
    )
    ingest.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="fault spec, including write-path crash points — e.g. "
        "'crash=kill_after_wal_write:3' SIGKILLs this process at the third "
        "WAL fsync, and 'lie_fsync=1' models a disk that drops unsynced "
        "writes (the crash-recovery harness drives these)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the AST-based invariant checker over the source tree "
        "(strict pruning, seeded RNG, atomic writes, counter conservation, "
        "...); exits 1 on findings",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro "
        "package sources)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of rules to run (see --list-rules)",
    )
    lint.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="also emit the machine-readable report ('-' or no value: stdout)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules with the invariant each one enforces",
    )
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--count", type=int, default=2_000, help="number of series")
    parser.add_argument(
        "--length",
        type=int,
        default=None,
        help="series length (default 128 for generated datasets; mandatory for "
        f"raw {'/'.join(RAW_SUFFIXES)} dataset files, whose rows it defines)",
    )
    parser.add_argument(
        "--dataset",
        default="random-walk",
        choices=("random-walk",) + REAL_DATASET_NAMES,
        help="dataset generator",
    )
    parser.add_argument("--queries", type=int, default=10, help="number of queries")
    parser.add_argument(
        "--workload",
        default="rand",
        choices=("rand", "ctrl"),
        help="random-walk queries or controlled-difficulty queries",
    )
    parser.add_argument("--seed", type=int, default=2018, help="random seed")
    parser.add_argument(
        "--platform",
        default="hdd",
        choices=sorted(PLATFORMS),
        help="hardware cost model for the simulated I/O time",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread workers for parallel query serving and shard builds "
        "(default: 1; sharded methods default their shard count to this)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=("thread", "process"),
        help="shard fan-out backend for 'sharded:*' methods: 'thread' (the "
        "default) shares memory, 'process' runs shards on a warm process "
        "pool for multi-core speedup on Python-heavy tree descent (answers "
        "are byte-identical; also settable via REPRO_EXECUTOR)",
    )
    parser.add_argument(
        "--dataset-file",
        default=None,
        help="serve an on-disk dataset (.npy, or raw f32 with --length) instead "
        "of generating one; served memory-mapped by default",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=BACKEND_KINDS,
        help="storage backend: 'memory' loads the collection into RAM, 'mmap' "
        "serves it from a file without materializing it, 'compressed' serves "
        "quantized .rcz blocks with pruned two-phase scans (a generated or "
        "raw-file dataset is first spilled/converted to a temporary file)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="inject storage faults for chaos runs, e.g. "
        "'seed=7,transient=0.1,latency=0.05'; retried reads and degraded "
        "queries show up in the result columns (same spec format as the "
        "REPRO_FAULT_PLAN environment variable)",
    )


def _make_dataset(args: argparse.Namespace, stack: ExitStack):
    """The dataset for a run/compare command, honoring file and backend flags.

    ``--backend mmap`` without ``--dataset-file`` spills the generated
    collection to a temporary file (cleaned up on exit) so the run still
    exercises the out-of-core path; ``--backend compressed`` likewise spills
    to (or converts a non-``.rcz`` file into) a temporary quantized ``.rcz``
    file, so any dataset flag combination exercises the pruned scans.
    """
    if args.dataset_file:
        path = Path(args.dataset_file)
        if path.suffix.lower() in RAW_SUFFIXES and args.length is None:
            # Raw files carry no shape: defaulting the length would silently
            # reinterpret the rows, so demand an explicit one.
            raise SystemExit(
                f"--dataset-file {path}: raw {'/'.join(RAW_SUFFIXES)} files "
                "need an explicit --length (the row width is not stored in "
                "the file)"
            )
        dataset = Dataset.from_file(path, length=args.length)
    else:
        length = args.length if args.length is not None else 128
        if args.dataset == "random-walk":
            dataset = random_walk_dataset(args.count, length, seed=args.seed)
        else:
            dataset = real_like_dataset(
                args.dataset, args.count, length=length, seed=args.seed
            )
    if args.backend == "mmap" and dataset.backend is None:
        tmpdir = stack.enter_context(tempfile.TemporaryDirectory(prefix="repro-mmap-"))
        dataset = dataset.to_mmap(Path(tmpdir) / "dataset.npy")
    elif args.backend == "compressed" and (
        dataset.backend is None or dataset.backend.kind != "compressed"
    ):
        # Generated (or raw/npy-file) datasets are converted to a temporary
        # .rcz so the run serves quantized blocks; note the served values are
        # the dequantized ones (lossy relative to the original floats).
        tmpdir = stack.enter_context(tempfile.TemporaryDirectory(prefix="repro-rcz-"))
        dataset = dataset.to_compressed(Path(tmpdir) / "dataset.rcz")
    elif args.backend == "growable" and (
        dataset.backend is None or dataset.backend.kind != "growable"
    ):
        # Generated or file datasets are re-ingested into a temporary growable
        # store directory so the run exercises the live-collection read path
        # (segment files + checkpointed tail) end to end.
        tmpdir = stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-growable-")
        )
        dataset = dataset.to_growable(Path(tmpdir) / "store")
    return dataset


def _make_workload(args: argparse.Namespace, dataset):
    if args.workload == "ctrl":
        return synth_ctrl_workload(dataset, count=args.queries, seed=args.seed + 1)
    return synth_rand_workload(dataset.length, count=args.queries, seed=args.seed + 1)


def _base_method_name(name: str) -> str:
    """Strip the ``sharded:`` wrapper prefix (if any) for name validation."""
    return name.split(":", 1)[1] if name.startswith("sharded:") else name


def _known_method(name: str) -> bool:
    return _base_method_name(name) in available_methods()


def _method_params(
    name: str,
    leaf_size: int | None = None,
    workers: int | None = None,
    shards: int | None = None,
    allow_partial: bool = False,
    deadline: float | None = None,
    executor: str | None = None,
) -> dict:
    base = _base_method_name(name)
    params = dict(_DEFAULT_PARAMS.get(base, {}))
    if leaf_size is not None:
        key = "node_capacity" if base == "m-tree" else "leaf_capacity"
        params[key] = leaf_size
    if name.startswith("sharded:"):
        params["workers"] = workers if workers is not None else 1
        if shards is not None:
            params["shards"] = shards
        if allow_partial:
            params["allow_partial"] = True
        if deadline is not None:
            params["deadline_seconds"] = deadline
        if executor is not None:
            params["executor"] = executor
    return params


def _result_row(result) -> dict:
    row = {
        "method": result.method,
        "build_s": round(result.build_seconds, 3),
        "query_s": round(result.query_seconds, 3),
        "pruning": round(result.pruning_ratio, 3),
        "random_io": result.random_accesses,
        "sequential_pages": result.sequential_pages,
    }
    # Resilience columns appear only when something actually happened, so
    # healthy runs keep the familiar compact table.
    if result.retries:
        row["retries"] = result.retries
    if result.degraded_queries:
        row["degraded"] = result.degraded_queries
    return row


def _command_methods(_: argparse.Namespace, out) -> int:
    for name in available_methods():
        print(name, file=out)
    return 0


def _command_recommend(args: argparse.Namespace, out) -> int:
    advice = recommend_method(
        dataset_gb=args.gb, series_length=args.length, workload_queries=args.queries
    )
    print(f"method: {advice.method}", file=out)
    print(f"reason: {advice.reason}", file=out)
    return 0


def _command_run(args: argparse.Namespace, out) -> int:
    if not _known_method(args.method):
        print(f"unknown method {args.method!r}; run 'repro methods'", file=out)
        return 2
    if not args.method.startswith("sharded:"):
        for flag, value in (
            ("--shards", args.shards),
            ("--allow-partial", args.allow_partial or None),
            ("--deadline", args.deadline),
            ("--executor", args.executor),
        ):
            if value is not None:
                print(
                    f"{flag} only applies to sharded methods; did you mean "
                    f"--method sharded:{args.method}?",
                    file=out,
                )
                return 2
    if args.deadline is not None and not args.allow_partial:
        print("--deadline requires --allow-partial", file=out)
        return 2
    with ExitStack() as stack:
        dataset = _make_dataset(args, stack)
        workload = _make_workload(args, dataset)
        result = run_experiment(
            dataset,
            workload,
            args.method,
            platform=PLATFORMS[args.platform],
            method_params=_method_params(
                args.method,
                args.leaf_size,
                workers=args.workers,
                shards=args.shards,
                allow_partial=args.allow_partial,
                deadline=args.deadline,
                executor=args.executor,
            ),
            workers=args.workers,
            backend=args.backend,
            faults=args.fault_plan,
        )
    title = f"{args.method} on {dataset.name}"
    if args.backend:
        title += f" [{args.backend}]"
    print(render_table([_result_row(result)], title=title), file=out)
    return 0


def _command_compare(args: argparse.Namespace, out) -> int:
    names = [name.strip() for name in args.methods.split(",") if name.strip()]
    unknown = [name for name in names if not _known_method(name)]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=out)
        return 2
    with ExitStack() as stack:
        dataset = _make_dataset(args, stack)
        workload = _make_workload(args, dataset)
        results = {}
        rows = []
        for name in names:
            result = run_experiment(
                dataset,
                workload,
                name,
                platform=PLATFORMS[args.platform],
                method_params=_method_params(
                    name, workers=args.workers, executor=args.executor
                ),
                workers=args.workers,
                backend=args.backend,
                faults=args.fault_plan,
            )
            results[name] = result
            rows.append(_result_row(result))
    print(render_table(rows, title=f"comparison on {dataset.name} ({args.platform})"), file=out)
    winners = best_method_per_scenario(results)
    winner_rows = [{"scenario": scenario, "winner": winner} for scenario, winner in winners.items()]
    print(render_table(winner_rows, title="best method per scenario"), file=out)
    return 0


def _command_synth(args: argparse.Namespace, out) -> int:
    from .workloads.generators import random_walk_to_file

    if args.count <= 0 or args.length <= 0 or args.chunk_size <= 0:
        print("--count, --length, and --chunk-size must be positive", file=out)
        return 2
    try:
        dataset = random_walk_to_file(
            args.out,
            count=args.count,
            length=args.length,
            seed=args.seed,
            chunk_size=args.chunk_size,
            compress=args.compress,
        )
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    size = Path(args.out).stat().st_size
    print(
        f"wrote {dataset.count} x {dataset.length} series "
        f"({size / (1024 * 1024):.1f} MiB) to {args.out}",
        file=out,
    )
    suffix = Path(args.out).suffix.lower()
    length_hint = f" --length {args.length}" if suffix in RAW_SUFFIXES else ""
    backend_hint = "compressed" if dataset.backend.kind == "compressed" else "mmap"
    print(
        f"serve it with: repro run --method <name> --dataset-file {args.out}"
        f"{length_hint} --backend {backend_hint}",
        file=out,
    )
    return 0


def _command_ingest(args: argparse.Namespace, out) -> int:
    """Stream seeded random-walk rows into a growable store.

    Every batch is one ``extend()`` call: the rows are framed into the WAL,
    fsynced, and only then acknowledged with a flushed ``acked N`` line — the
    contract the crash-recovery harness verifies by SIGKILLing this process at
    seeded fault points and checking that every acked row survives reopen.
    """
    from .core.faults import FaultPlan
    from .core.growable import GrowableBackend, is_growable_dir
    from .workloads.generators import random_walk

    if args.count <= 0 or args.batch_rows <= 0:
        print("--count and --batch-rows must be positive", file=out)
        return 2
    try:
        plan = FaultPlan.from_spec(args.fault_plan) if args.fault_plan else None
    except ValueError as exc:
        print(f"--fault-plan: {exc}", file=out)
        return 2
    root = Path(args.store)
    creating = not is_growable_dir(root)
    if creating and args.length is None:
        print(
            f"--store {root}: no store there yet; creating one needs an "
            "explicit --length",
            file=out,
        )
        return 2
    try:
        backend = GrowableBackend(
            root, length=args.length, create=creating, plan=plan
        )
    except (ValueError, OSError) as exc:
        print(f"--store {root}: {exc}", file=out)
        return 2
    try:
        report = backend.recovery
        if report is not None:
            print(f"opened {root}: {report.describe()}", file=out, flush=True)
        if args.verify:
            verified = backend.verify_segments()
            print(f"verified {verified} sealed rows", file=out, flush=True)
        base = backend.count
        rows = random_walk(args.count, backend.length, seed=args.seed)
        batches = 0
        for start in range(0, args.count, args.batch_rows):
            total = backend.extend(rows[start : start + args.batch_rows])
            # The ack line is the durability contract: it is only printed
            # after the WAL fsync, and it is flushed so a SIGKILL cannot
            # leave an acked batch stranded in a stdio buffer.
            print(f"acked {total}", file=out, flush=True)
            batches += 1
            if args.checkpoint_every and batches % args.checkpoint_every == 0:
                backend.checkpoint()
                print(f"checkpointed {backend.count}", file=out, flush=True)
        if not args.no_final_checkpoint:
            backend.checkpoint()
        print(
            f"store {root}: {backend.count} rows "
            f"({backend.count - base} ingested, "
            f"{len(backend.describe().get('segments', []))} segments)",
            file=out,
        )
    finally:
        backend.close()
    return 0


def _command_lint(args: argparse.Namespace, out) -> int:
    """Run the invariant checker; 0 clean, 1 findings, 2 usage errors."""
    from .analysis import all_rules, lint_paths
    from .analysis.linter import render_json

    rules = all_rules()
    if args.list_rules:
        for name in sorted(rules):
            rule = rules[name]
            print(f"{name} [{rule.severity}]: {rule.description}", file=out)
            if rule.invariant:
                print(f"    invariant: {rule.invariant}", file=out)
        return 0
    selected = None
    if args.rules is not None:
        names = [name.strip() for name in args.rules.split(",") if name.strip()]
        unknown = sorted(set(names) - set(rules))
        if unknown or not names:
            known = ", ".join(sorted(rules))
            what = ", ".join(unknown) if unknown else "(none given)"
            print(f"unknown rule(s): {what}; available: {known}", file=out)
            return 2
        selected = [rules[name] for name in names]
    paths = args.paths or [str(Path(__file__).resolve().parent)]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=out)
        return 2
    report = lint_paths(paths, rules=selected)
    if args.json is not None:
        payload = render_json(report)
        if args.json == "-":
            print(payload, file=out)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
    if args.json != "-":
        print(report.render_text(), file=out)
    return 0 if report.clean else 1


_COMMANDS = {
    "methods": _command_methods,
    "recommend": _command_recommend,
    "run": _command_run,
    "compare": _command_compare,
    "synth": _command_synth,
    "ingest": _command_ingest,
    "lint": _command_lint,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
