"""Command line interface for the library.

Provides a small set of subcommands so the common workflows can be driven
without writing Python::

    python -m repro methods                     # list the available methods
    python -m repro recommend --gb 100 --length 256
    python -m repro run --method dstree --count 5000 --length 128 --queries 10
    python -m repro compare --methods dstree,va+file,ucr-suite --count 2000

The ``run`` and ``compare`` commands generate a seeded random-walk dataset (or
one of the real-dataset analogues), build the requested method(s), answer a
query workload, and print the same measures the benchmark harness reports.
"""

from __future__ import annotations

import argparse
import sys

from .core.registry import available_methods
from .core.engine import recommend_method
from .evaluation.hardware import PLATFORMS
from .evaluation.reporting import render_table
from .evaluation.runner import run_experiment
from .evaluation.scenarios import best_method_per_scenario
from .workloads.generators import random_walk_dataset
from .workloads.real_like import REAL_DATASET_NAMES, real_like_dataset
from .workloads.workload import synth_ctrl_workload, synth_rand_workload

__all__ = ["main", "build_parser"]

#: leaf-size defaults used by the CLI when the user does not override them.
_DEFAULT_PARAMS = {
    "ads+": {"leaf_capacity": 100},
    "dstree": {"leaf_capacity": 100},
    "isax2+": {"leaf_capacity": 100},
    "sfa-trie": {"leaf_capacity": 500},
    "m-tree": {"node_capacity": 16},
    "r*-tree": {"leaf_capacity": 50},
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data series similarity search (Lernaean Hydra reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list the available similarity-search methods")

    rec = sub.add_parser("recommend", help="recommend a method for a dataset shape")
    rec.add_argument("--gb", type=float, required=True, help="dataset size in GB")
    rec.add_argument("--length", type=int, required=True, help="series length")
    rec.add_argument("--queries", type=int, default=10_000, help="expected query count")

    run = sub.add_parser("run", help="build one method and answer a workload")
    _add_dataset_arguments(run)
    run.add_argument(
        "--method",
        required=True,
        help="method name (see 'methods'); prefix with 'sharded:' for the "
        "partition-parallel wrapper (e.g. sharded:isax2+)",
    )
    run.add_argument("--leaf-size", type=int, default=None, help="leaf capacity override")
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partitions for a 'sharded:*' method (default: the worker count)",
    )

    compare = sub.add_parser("compare", help="compare several methods on one dataset")
    _add_dataset_arguments(compare)
    compare.add_argument(
        "--methods",
        default="dstree,va+file,ucr-suite",
        help="comma-separated method names ('sharded:<name>' wraps any of them)",
    )
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--count", type=int, default=2_000, help="number of series")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument(
        "--dataset",
        default="random-walk",
        choices=("random-walk",) + REAL_DATASET_NAMES,
        help="dataset generator",
    )
    parser.add_argument("--queries", type=int, default=10, help="number of queries")
    parser.add_argument(
        "--workload",
        default="rand",
        choices=("rand", "ctrl"),
        help="random-walk queries or controlled-difficulty queries",
    )
    parser.add_argument("--seed", type=int, default=2018, help="random seed")
    parser.add_argument(
        "--platform",
        default="hdd",
        choices=sorted(PLATFORMS),
        help="hardware cost model for the simulated I/O time",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread workers for parallel query serving and shard builds "
        "(default: 1; sharded methods default their shard count to this)",
    )


def _make_dataset(args: argparse.Namespace):
    if args.dataset == "random-walk":
        return random_walk_dataset(args.count, args.length, seed=args.seed)
    return real_like_dataset(args.dataset, args.count, length=args.length, seed=args.seed)


def _make_workload(args: argparse.Namespace, dataset):
    if args.workload == "ctrl":
        return synth_ctrl_workload(dataset, count=args.queries, seed=args.seed + 1)
    return synth_rand_workload(dataset.length, count=args.queries, seed=args.seed + 1)


def _base_method_name(name: str) -> str:
    """Strip the ``sharded:`` wrapper prefix (if any) for name validation."""
    return name.split(":", 1)[1] if name.startswith("sharded:") else name


def _known_method(name: str) -> bool:
    return _base_method_name(name) in available_methods()


def _method_params(
    name: str,
    leaf_size: int | None = None,
    workers: int | None = None,
    shards: int | None = None,
) -> dict:
    base = _base_method_name(name)
    params = dict(_DEFAULT_PARAMS.get(base, {}))
    if leaf_size is not None:
        key = "node_capacity" if base == "m-tree" else "leaf_capacity"
        params[key] = leaf_size
    if name.startswith("sharded:"):
        params["workers"] = workers if workers is not None else 1
        if shards is not None:
            params["shards"] = shards
    return params


def _result_row(result) -> dict:
    return {
        "method": result.method,
        "build_s": round(result.build_seconds, 3),
        "query_s": round(result.query_seconds, 3),
        "pruning": round(result.pruning_ratio, 3),
        "random_io": result.random_accesses,
        "sequential_pages": result.sequential_pages,
    }


def _command_methods(_: argparse.Namespace, out) -> int:
    for name in available_methods():
        print(name, file=out)
    return 0


def _command_recommend(args: argparse.Namespace, out) -> int:
    advice = recommend_method(
        dataset_gb=args.gb, series_length=args.length, workload_queries=args.queries
    )
    print(f"method: {advice.method}", file=out)
    print(f"reason: {advice.reason}", file=out)
    return 0


def _command_run(args: argparse.Namespace, out) -> int:
    if not _known_method(args.method):
        print(f"unknown method {args.method!r}; run 'repro methods'", file=out)
        return 2
    if args.shards is not None and not args.method.startswith("sharded:"):
        print(
            f"--shards only applies to sharded methods; did you mean "
            f"--method sharded:{args.method}?",
            file=out,
        )
        return 2
    dataset = _make_dataset(args)
    workload = _make_workload(args, dataset)
    result = run_experiment(
        dataset,
        workload,
        args.method,
        platform=PLATFORMS[args.platform],
        method_params=_method_params(
            args.method, args.leaf_size, workers=args.workers, shards=args.shards
        ),
        workers=args.workers,
    )
    print(render_table([_result_row(result)], title=f"{args.method} on {dataset.name}"), file=out)
    return 0


def _command_compare(args: argparse.Namespace, out) -> int:
    names = [name.strip() for name in args.methods.split(",") if name.strip()]
    unknown = [name for name in names if not _known_method(name)]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=out)
        return 2
    dataset = _make_dataset(args)
    workload = _make_workload(args, dataset)
    results = {}
    rows = []
    for name in names:
        result = run_experiment(
            dataset,
            workload,
            name,
            platform=PLATFORMS[args.platform],
            method_params=_method_params(name, workers=args.workers),
            workers=args.workers,
        )
        results[name] = result
        rows.append(_result_row(result))
    print(render_table(rows, title=f"comparison on {dataset.name} ({args.platform})"), file=out)
    winners = best_method_per_scenario(results)
    winner_rows = [{"scenario": scenario, "winner": winner} for scenario, winner in winners.items()]
    print(render_table(winner_rows, title="best method per scenario"), file=out)
    return 0


_COMMANDS = {
    "methods": _command_methods,
    "recommend": _command_recommend,
    "run": _command_run,
    "compare": _command_compare,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
