"""Sequential (non-indexing) methods: UCR Suite, MASS and the flat scan."""

from .flat import FlatScan
from .mass import MassScan
from .ucr_suite import UcrSuiteScan

__all__ = ["FlatScan", "MassScan", "UcrSuiteScan"]
