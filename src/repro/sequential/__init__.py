"""Sequential (non-indexing) similarity-search methods: UCR Suite and MASS."""

from .ucr_suite import UcrSuiteScan
from .mass import MassScan

__all__ = ["UcrSuiteScan", "MassScan"]
