"""UCR-Suite sequential scan, adapted to exact whole matching.

The UCR Suite is the paper's baseline: an optimized serial scan that (a) works
on squared distances, (b) early-abandons each distance computation against the
best-so-far, and (c) visits dimensions in decreasing order of the query's
absolute (z-normalized) value so abandoning triggers sooner.  The paper applies
these same optimizations to every other method; here they live in
:mod:`repro.core.distance` and this class simply drives the scan.
"""

from __future__ import annotations

import numpy as np

from ..core.answers import KnnAnswerSet
from ..core.distance import early_abandon_reordered, reorder_by_query, squared_euclidean_batch
from ..core.stats import QueryStats
from ..core.storage import SeriesStore
from ..indexes.base import SearchMethod

__all__ = ["UcrSuiteScan"]


class UcrSuiteScan(SearchMethod):
    """Optimized sequential scan (exact, whole matching).

    Parameters
    ----------
    store:
        The raw-data store.
    use_early_abandoning:
        Disable to measure the value of early abandoning (ablation); the paper
        always keeps it on.
    block_size:
        Number of series scanned per vectorized block when early abandoning is
        disabled.
    """

    name = "ucr-suite"
    is_index = False
    supports_approximate = False

    def __init__(
        self,
        store: SeriesStore,
        use_early_abandoning: bool = True,
        block_size: int = 4096,
    ) -> None:
        super().__init__(store)
        self.use_early_abandoning = use_early_abandoning
        self.block_size = max(1, block_size)

    def _build(self) -> None:
        """Sequential methods have no build step."""

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        data = self.store.scan()
        stats.series_examined += self.store.count

        if not self.use_early_abandoning:
            for start in range(0, self.store.count, self.block_size):
                block = data[start : start + self.block_size]
                distances = squared_euclidean_batch(query, block)
                answers.offer_batch(np.arange(start, start + block.shape[0]), distances)
            return answers

        order = reorder_by_query(query)
        # Seed the best-so-far with a small vectorized block so the Python-level
        # early-abandoning loop starts with a meaningful threshold.
        seed = min(self.block_size, self.store.count)
        seed_distances = squared_euclidean_batch(query, data[:seed])
        answers.offer_batch(np.arange(seed), seed_distances)
        for position in range(seed, self.store.count):
            threshold = answers.worst_squared_distance
            distance = early_abandon_reordered(query, data[position], threshold, order)
            # <=: a distance tying the k-th value may still win the positional
            # tie-break inside offer (abandoning only triggers strictly above
            # the threshold, so tied candidates are fully computed).
            if distance <= threshold:
                answers.offer(position, distance)
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info["early_abandoning"] = self.use_early_abandoning
        return info
