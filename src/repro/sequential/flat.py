"""Flat scan: the vectorized brute-force baseline and batch-execution showcase.

The flat scan answers exact k-NN queries with a plain vectorized pass over the
raw data using the norm-expansion identity
``||q - c||^2 = ||q||^2 + ||c||^2 - 2 <q, c>``: candidate norms are
precomputed once at build time and each query costs one matrix-vector product
per data tile.  Its real purpose is the *batch* path: ``knn_exact_batch``
answers a whole query batch with one ``(Q, N)`` distance-matrix tile pass —
the dot products of every query against every candidate in a tile come out of
a single GEMM call — which is where NumPy-backed Python recovers the paper's
"same optimized kernels for everyone" speed for multi-query workloads.
"""

from __future__ import annotations

import numpy as np

from ..core.answers import KnnAnswerSet
from ..core.stats import QueryStats
from ..core.storage import SeriesStore
from ..indexes.base import SearchMethod

__all__ = ["FlatScan"]


class FlatScan(SearchMethod):
    """Vectorized brute-force scan (exact, whole matching).

    Parameters
    ----------
    store:
        The raw-data store.
    tile_series:
        Memory-tiling knob: number of candidate series per distance-matrix
        tile.  The batch path materializes one ``(Q, tile_series)`` block of
        squared distances at a time, so peak extra memory is
        ``8 * Q * tile_series`` bytes regardless of the dataset size.
    """

    name = "flat"
    is_index = False
    supports_approximate = False

    def __init__(self, store: SeriesStore, tile_series: int = 4096) -> None:
        super().__init__(store)
        self.tile_series = max(1, int(tile_series))
        self._norms: np.ndarray | None = None

    def _build(self) -> None:
        """Precompute candidate squared norms (one streamed, RSS-bounded pass)."""
        self._norms = self._streamed_norms(chunk_rows=self.tile_series)

    def append(self, position: int) -> None:
        self.extend(int(position), int(position) + 1)

    def extend(self, start: int, stop: int | None = None) -> int:
        """Grow the precomputed norms to cover newly ingested rows.

        The scan itself always walks the store's *current* rows; the only
        build-time state is the norm vector, so extending is one vectorized
        norm computation over the new rows.
        """
        self._require_built()
        start = int(start)
        stop = self.store.count if stop is None else int(stop)
        if not (0 <= start <= stop <= self.store.count):
            raise ValueError(
                f"extend range [{start}, {stop}) out of bounds for "
                f"{self.store.count} rows"
            )
        if stop > start:
            block = np.asarray(
                self.store.peek(slice(start, stop)), dtype=np.float64
            )
            fresh = np.einsum("ij,ij->i", block, block)
            self._norms = np.concatenate([self._norms[:start], fresh])
        return stop - start

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        if self.store.supports_quantized_scan:
            return self._knn_exact_pruned(query, k, stats)
        answers = self._make_answer_set(k)
        stats.series_examined += self.store.count
        q = np.asarray(query, dtype=np.float64)
        q_norm = float(np.dot(q, q))
        for start, raw in self.store.scan_chunks(chunk_rows=self.tile_series):
            stop = start + raw.shape[0]
            block = raw.astype(np.float64)
            norms = self._tile_norms(self._norms, block, start, stop)
            distances = norms + q_norm - 2.0 * (block @ q)
            np.clip(distances, 0.0, None, out=distances)
            answers.offer_batch(np.arange(start, stop), distances)
        return answers

    def _knn_exact_pruned(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        """Two-phase scan on the compressed backend: filter quantized tiles
        against the tightening best-so-far radius, fetch full precision only
        for survivors.  Surviving tiles run the identical kernel at identical
        tile boundaries as the plain scan, and the quantized bound is sound,
        so the answers are byte-identical while the physical bytes read drop
        several-fold."""
        answers = self._make_answer_set(k)
        q = np.asarray(query, dtype=np.float64)
        q_norm = float(np.dot(q, q))
        q2 = q[np.newaxis, :]
        for start, stop, parts in self.store.scan_quantized_chunks(
            chunk_rows=self.tile_series
        ):
            stats.lower_bounds_computed += stop - start
            threshold = np.array([answers.worst_squared_distance])
            if not self._tile_survives_filter(parts, q2, threshold):
                continue
            raw = self.store.read_contiguous(start, stop)
            stats.series_examined += stop - start
            block = raw.astype(np.float64)
            norms = self._tile_norms(self._norms, block, start, stop)
            distances = norms + q_norm - 2.0 * (block @ q)
            np.clip(distances, 0.0, None, out=distances)
            answers.offer_batch(np.arange(start, stop), distances)
        return answers

    def _batch_answer_sets(self, queries: np.ndarray, k: int):
        """Exact k-NN for a whole query batch in one tiled distance-matrix pass.

        One GEMM per tile produces the ``(Q, tile)`` dot-product block shared
        by every query, so the raw-data pass, the dtype conversion, and the
        BLAS kernel are amortized over the batch; answers are identical to
        calling :meth:`knn_exact` per query (up to floating-point rounding of
        the underlying matrix product).
        """
        # One GEMM per tile: the dot products of the whole batch at once.
        return self._tiled_batch_scan(
            queries, k, self.tile_series, self._norms, lambda block: queries @ block.T
        )

    def describe(self) -> dict:
        info = super().describe()
        info["tile_series"] = self.tile_series
        return info
