"""MASS adapted to exact whole matching.

MASS computes distances through Fourier-domain dot products.  For the
whole-matching setting of the paper (query and candidates have the same
length), the squared Euclidean distance decomposes as
``||q||^2 + ||c||^2 - 2 <q, c>``, and the dot products of the query with every
candidate are computed in bulk in the frequency domain.  As the paper observes,
the method's cost is dominated by CPU (the transform and dot-product work).
"""

from __future__ import annotations

import numpy as np

from ..core.answers import KnnAnswerSet
from ..core.stats import QueryStats
from ..core.storage import SeriesStore
from ..indexes.base import SearchMethod

__all__ = ["MassScan"]


class MassScan(SearchMethod):
    """FFT dot-product sequential scan (exact, whole matching).

    Parameters
    ----------
    store:
        The raw-data store.
    block_size:
        Number of candidate series processed per FFT batch.
    """

    name = "mass"
    is_index = False
    supports_approximate = False

    def __init__(self, store: SeriesStore, block_size: int = 2048) -> None:
        super().__init__(store)
        self.block_size = max(1, block_size)
        self._norms: np.ndarray | None = None

    def _build(self) -> None:
        """Precompute candidate squared norms (one streamed, RSS-bounded pass)."""
        self._norms = self._streamed_norms(chunk_rows=self.block_size)

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        stats.series_examined += self.store.count

        n = self.store.length
        q = np.asarray(query, dtype=np.float64)
        q_norm = float(np.dot(q, q))
        # Frequency-domain dot products: conj(FFT(candidates)) * FFT(query),
        # inverse-transformed and evaluated at lag 0.
        q_fft = np.fft.rfft(q, n=n)
        for start, raw in self.store.scan_chunks(chunk_rows=self.block_size):
            block = raw.astype(np.float64)
            norms = self._tile_norms(self._norms, block, start, start + block.shape[0])
            block_fft = np.fft.rfft(block, n=n, axis=1)
            dot = np.fft.irfft(block_fft * np.conj(q_fft), n=n, axis=1)[:, 0]
            distances = norms + q_norm - 2.0 * dot
            np.clip(distances, 0.0, None, out=distances)
            answers.offer_batch(np.arange(start, start + block.shape[0]), distances)
        return answers

    def _batch_answer_sets(self, queries: np.ndarray, k: int):
        """Exact k-NN for a whole query batch with shared candidate FFTs.

        The expensive side of MASS is transforming the candidates; in the
        batch path each data block is transformed *once* and the lag-0 dot
        products of every query against the block come out of one complex
        matrix product (the frequency-domain evaluation of
        ``irfft(block_fft * conj(q_fft))[..., 0]``, with conjugate-symmetry
        weights folding the hermitian half-spectrum).
        """
        qs = queries
        n = self.store.length
        q_fft = np.fft.rfft(qs, n=n, axis=1)  # (Q, F)
        # Hermitian weights: DC (and Nyquist for even n) count once, the
        # mirrored interior bins twice.
        weights = np.full(q_fft.shape[1], 2.0)
        weights[0] = 1.0
        if n % 2 == 0:
            weights[-1] = 1.0
        spectrum = (np.conj(q_fft) * weights).T / n  # (F, Q)

        def dots_for(block: np.ndarray) -> np.ndarray:
            block_fft = np.fft.rfft(block, n=n, axis=1)  # (T, F), once per tile
            return np.real(block_fft @ spectrum).T  # (Q, T) in one complex GEMM

        return self._tiled_batch_scan(qs, k, self.block_size, self._norms, dots_for)

    def describe(self) -> dict:
        info = super().describe()
        info["block_size"] = self.block_size
        return info
