"""repro: data series similarity search — a reproduction of the Lernaean Hydra study.

This library implements the ten exact whole-matching similarity-search methods
evaluated in "The Lernaean Hydra of Data Series Similarity Search: An
Experimental Evaluation of the State of the Art" (PVLDB 2018), together with
the summarization techniques they rely on, the workload generators, and the
evaluation harness (access accounting, hardware cost models, pruning ratio,
TLB, and the paper's experimental scenarios).

Quick start::

    import numpy as np
    from repro import Dataset, SimilaritySearchEngine

    data = np.cumsum(np.random.randn(10_000, 128), axis=1)
    engine = SimilaritySearchEngine(Dataset.from_array(data, normalize=True))
    engine.build("dstree", leaf_capacity=100)
    result = engine.search(data[42], k=5, normalize=True)
    print(result.positions(), result.distances())
"""

from .core import (
    Dataset,
    KnnQuery,
    MatchingAccuracy,
    MemoryBackend,
    MmapBackend,
    Neighbor,
    QueryWorkload,
    RangeQuery,
    Recommendation,
    SeriesFileWriter,
    SimilaritySearchEngine,
    StorageBackend,
    available_methods,
    create_method,
    load_method,
    recommend_method,
    register_method,
    save_method,
    write_series_file,
    znormalize,
)
from .core.registry import METHOD_NAMES
from .core.stats import IndexStats, QueryStats
from .core.storage import SeriesStore
from .evaluation import (
    HDD,
    SSD,
    ExperimentResult,
    HardwareModel,
    run_comparison,
    run_experiment,
)
from .core.parallel import parallel_batch_search, resolve_workers
from .indexes import (
    AdsPlusIndex,
    DsTreeIndex,
    Isax2PlusIndex,
    MTreeIndex,
    RStarTreeIndex,
    SearchMethod,
    SearchResult,
    SfaTrieIndex,
    ShardedMethod,
    StepwiseIndex,
    VaPlusFileIndex,
)
from .sequential import FlatScan, MassScan, UcrSuiteScan

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Dataset",
    "SimilaritySearchEngine",
    "Recommendation",
    "recommend_method",
    "KnnQuery",
    "RangeQuery",
    "QueryWorkload",
    "MatchingAccuracy",
    "Neighbor",
    "znormalize",
    "available_methods",
    "create_method",
    "register_method",
    "save_method",
    "load_method",
    "METHOD_NAMES",
    "QueryStats",
    "IndexStats",
    "SeriesStore",
    "StorageBackend",
    "MemoryBackend",
    "MmapBackend",
    "SeriesFileWriter",
    "write_series_file",
    "HardwareModel",
    "HDD",
    "SSD",
    "ExperimentResult",
    "run_experiment",
    "run_comparison",
    "SearchMethod",
    "SearchResult",
    "ShardedMethod",
    "parallel_batch_search",
    "resolve_workers",
    "AdsPlusIndex",
    "DsTreeIndex",
    "Isax2PlusIndex",
    "MTreeIndex",
    "RStarTreeIndex",
    "SfaTrieIndex",
    "StepwiseIndex",
    "VaPlusFileIndex",
    "UcrSuiteScan",
    "MassScan",
    "FlatScan",
]
