"""Figure 7 — scalability comparison of the best methods on the SSD platform.

Same four panels as Figure 6, priced with the SSD cost model.  The paper's
headline finding is the flip: because random accesses are cheap on the SSD box,
the skip-sequential methods (VA+file and ADS+) become the best performers on
most scenarios, while the serial scan suffers from the box's lower sequential
throughput.
"""

from __future__ import annotations

from repro.evaluation import SSD, render_series, scenario_seconds

from .conftest import BEST_METHODS, LARGE_SIZE_SWEEP, dataset_for, run_cell, summarize, workload_for

SCENARIO_PANELS = ("Idx", "Exact100", "Idx+Exact100", "Idx+Exact10K")


def test_fig07_ssd_scalability(benchmark):
    workload = workload_for(count=5)
    panels = {scenario: {m: [] for m in BEST_METHODS} for scenario in SCENARIO_PANELS}
    ssd_io = {}
    hdd_io = {}
    from repro.evaluation import HDD

    for paper_gb in LARGE_SIZE_SWEEP:
        dataset = dataset_for(paper_gb)
        for method in BEST_METHODS:
            result = run_cell(dataset, workload, method, platform=SSD)
            for scenario in SCENARIO_PANELS:
                panels[scenario][method].append(
                    (paper_gb, round(scenario_seconds(result, scenario), 3))
                )
            if paper_gb == max(LARGE_SIZE_SWEEP):
                ssd_io[method] = result.query_io_seconds
                hdd_io[method] = sum(
                    HDD.io_seconds_for(stats) for stats in result.query_stats
                )

    for scenario in SCENARIO_PANELS:
        summarize(
            f"Figure 7 ({scenario}) - SSD platform, total time in seconds",
            render_series(panels[scenario], x_label="dataset_gb"),
        )

    # Shape check - the paper's "trend is reversed" observation: moving from
    # the HDD to the SSD model makes the random-access-bound methods (ADS+,
    # VA+file) cheaper, while the sequential-scan baseline gets *more*
    # expensive (the paper's SSD box has lower sequential throughput).
    assert ssd_io["va+file"] < hdd_io["va+file"]
    assert ssd_io["ads+"] < hdd_io["ads+"]
    assert ssd_io["ucr-suite"] > hdd_io["ucr-suite"]

    dataset = dataset_for(min(LARGE_SIZE_SWEEP))

    def one_cell():
        return run_cell(dataset, workload, "va+file", platform=SSD).total_seconds

    benchmark.pedantic(one_cell, rounds=1, iterations=1)
