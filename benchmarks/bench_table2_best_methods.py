"""Table 2 — best method per scenario, dataset and platform.

The paper's Table 2 names the winning method for every combination of dataset
(small/large synthetic plus the four real datasets), platform (HDD/SSD) and
scenario (Idx, Exact100, Idx+Exact100, Idx+Exact10K, Easy-20, Hard-20).  This
benchmark regenerates the table at reduced scale using the controlled
workloads, the same extrapolation procedure and the same easy/hard labelling
(by average pruning ratio across methods).
"""

from __future__ import annotations

from repro.evaluation import HDD, SSD, best_method_per_scenario, render_table, run_comparison
from repro.evaluation.scenarios import SCENARIOS
from repro.workloads import (
    random_walk_dataset,
    real_like_dataset,
    synth_ctrl_workload,
)

from .conftest import METHOD_PARAMS, summarize

TABLE_METHODS = {name: METHOD_PARAMS[name] for name in (
    "ads+", "dstree", "isax2+", "sfa-trie", "va+file", "ucr-suite"
)}
QUERIES = 8


def _datasets():
    yield "Small", random_walk_dataset(800, 128, seed=41, name="synthetic-small")
    yield "Large", random_walk_dataset(4_000, 128, seed=42, name="synthetic-large")
    yield "Astro", real_like_dataset("astro", 2_000, seed=43)
    yield "Deep1B", real_like_dataset("deep1b", 2_000, seed=44)
    yield "SALD", real_like_dataset("sald", 2_000, seed=45)
    yield "Seismic", real_like_dataset("seismic", 2_000, seed=46)


def test_table2_best_methods(benchmark):
    rows = []
    winners_by_platform = {"hdd": {}, "ssd": {}}
    for label, dataset in _datasets():
        workload = synth_ctrl_workload(dataset, count=QUERIES, seed=47)
        for platform in (HDD, SSD):
            results = run_comparison(dataset, workload, TABLE_METHODS, platform=platform)
            winners = best_method_per_scenario(results)
            winners_by_platform[platform.name][label] = winners
            row = {"platform": platform.name, "dataset": label}
            row.update({scenario: winners[scenario] for scenario in SCENARIOS})
            rows.append(row)
    summarize("Table 2 - best method per scenario (controlled workloads)", render_table(rows))

    # Every cell must be filled with one of the compared methods; the
    # time-based winner identities at laptop scale differ from the paper's
    # (see DESIGN.md §2), so the assertions stay structural.
    for platform_winners in winners_by_platform.values():
        for winners in platform_winners.values():
            assert set(winners) == set(SCENARIOS)
            for winner in winners.values():
                assert winner in TABLE_METHODS
    # The serial scan has no build phase, so it can never lose "Idx" to a
    # method whose build does strictly more work than its own single pass -
    # sanity-check that the Idx winner is one of the single-pass builders.
    for winners in winners_by_platform["hdd"].values():
        assert winners["Idx"] in ("ads+", "va+file", "sfa-trie", "ucr-suite", "isax2+")

    dataset = random_walk_dataset(800, 128, seed=41)
    workload = synth_ctrl_workload(dataset, count=QUERIES, seed=47)

    def one_comparison():
        results = run_comparison(
            dataset, workload, {"dstree": METHOD_PARAMS["dstree"], "ucr-suite": {}}, platform=HDD
        )
        return best_method_per_scenario(results)

    benchmark.pedantic(one_comparison, rounds=1, iterations=1)
