"""Crash-recovery matrix: SIGKILL grid over crash points, seeds, and layouts.

Runs the subprocess crash harness (``repro.core.crash_harness``) over the
full grid of seeded crash points x fault seeds x store layouts and writes the
outcomes as a JSON artifact.  The gate is absolute: any cell that loses an
acked row (with honest fsyncs), materializes torn data, or leaves the store
unusable fails the run with exit code 1 — CI uploads the artifact either way
so a regression is a diff, not a mystery.

Grid dimensions:

* **crash point** — every seeded kill site in ``CRASH_POINTS``: after the
  WAL fsync, before it, mid-checkpoint-segment, after the segment seal, and
  before the WAL truncate.
* **seed** — the ingest's random-walk seed; both the child and the auditor
  regenerate the same matrix, so row equality is bit-exact.
* **layout** — batch/checkpoint cadence variants, including a no-checkpoint
  run (everything rides the WAL) and a lying-fsync run (acked rows may be
  lost by design; the cell then audits prefix consistency only).

Run directly::

    PYTHONPATH=src python benchmarks/crash_matrix.py --seeds 7,23

Not collected under plain pytest (see conftest.py); set RUN_BENCHMARKS=1 to
opt the benchmark suite into a pytest run.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.crash_harness import run_crash_cell  # noqa: E402
from repro.core.faults import CRASH_POINTS  # noqa: E402

#: layout variants: (label, harness overrides)
LAYOUTS = (
    ("checkpointed", dict(batch_rows=16, checkpoint_every=2)),
    ("wal-only", dict(batch_rows=16, checkpoint_every=0)),
    ("big-batches", dict(batch_rows=64, checkpoint_every=1)),
    ("lying-fsync", dict(batch_rows=16, checkpoint_every=2, lie_fsync=True)),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", default="7,23", help="comma-separated ingest seeds"
    )
    parser.add_argument("--count", type=int, default=128, help="rows per ingest")
    parser.add_argument("--length", type=int, default=24, help="series length")
    parser.add_argument(
        "--crash-hit", type=int, default=2,
        help="which arrival at the crash point fires the SIGKILL",
    )
    parser.add_argument(
        "--json", default="BENCH_crash_matrix.json", help="output artifact path"
    )
    args = parser.parse_args(argv)
    seeds = [int(s) for s in str(args.seeds).split(",") if s.strip()]

    started = time.time()
    cells = []
    failures = 0
    acked_lost = 0

    with tempfile.TemporaryDirectory(prefix="crash-matrix-") as tmp:
        for crash_point in CRASH_POINTS:
            for layout, overrides in LAYOUTS:
                for seed in seeds:
                    root = (
                        Path(tmp) / f"{crash_point}-{layout}-{seed}" / "store"
                    )
                    outcome = run_crash_cell(
                        root,
                        crash_point=crash_point,
                        crash_hit=args.crash_hit,
                        seed=seed,
                        count=args.count,
                        length=args.length,
                        **overrides,
                    )
                    cell = outcome.summary()
                    cell.update(layout=layout)
                    cells.append(cell)
                    if not outcome.ok:
                        failures += 1
                        if any("ACKED ROW LOSS" in f for f in outcome.failures):
                            acked_lost += 1

    report = {
        "benchmark": "crash_matrix",
        "seeds": seeds,
        "crash_points": list(CRASH_POINTS),
        "layouts": [label for label, _ in LAYOUTS],
        "ingest": {"count": args.count, "length": args.length},
        "elapsed_s": round(time.time() - started, 2),
        "cells": cells,
        "failures": failures,
        "acked_rows_lost_cells": acked_lost,
    }
    Path(args.json).write_text(json.dumps(report, indent=2))

    for cell in cells:
        status = "PASS" if cell["ok"] else "FAIL"
        print(
            f"[{status}] {cell['crash_point']:>28} {cell['layout']:>12} "
            f"seed={cell['seed']:<3} killed={int(cell['killed'])} "
            f"acked={cell['acked']:>3} recovered={cell['recovered']:>3}"
        )
        for failure in cell["failures"]:
            print(f"       !! {failure}")
    print(
        f"wrote {args.json} ({len(cells)} cells, {failures} failures, "
        f"{acked_lost} with acked-row loss)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
