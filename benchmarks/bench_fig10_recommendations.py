"""Figure 10 — the recommendation matrix (dataset size x series length).

The paper closes with a decision matrix for the Idx+10K-queries-on-HDD
scenario: iSAX2+ or DSTree for in-memory short series, DSTree/VA+file
elsewhere, with the decision depending on size and length.  This benchmark
(1) prints the advisor's matrix over a size/length grid and (2) validates it
empirically at small scale by checking that the advisor's pick is never far
from the measured winner.
"""

from __future__ import annotations

from repro import recommend_method
from repro.evaluation import HDD, render_table, run_comparison
from repro.evaluation.scenarios import scenario_seconds
from repro.workloads import random_walk_dataset, synth_rand_workload

from .conftest import METHOD_PARAMS, summarize

GRID_SIZES_GB = (25, 100, 500, 1000)
GRID_LENGTHS = (256, 2048, 16384)

EMPIRICAL_METHODS = {name: METHOD_PARAMS[name] for name in ("dstree", "isax2+", "va+file", "ucr-suite")}


def test_fig10_recommendation_matrix(benchmark):
    rows = []
    for length in GRID_LENGTHS:
        row = {"series_length": length}
        for size_gb in GRID_SIZES_GB:
            advice = recommend_method(dataset_gb=size_gb, series_length=length)
            row[f"{size_gb}GB"] = advice.method
        rows.append(row)
    summarize(
        "Figure 10 - recommended method (Idx + 10K queries, HDD)", render_table(rows)
    )

    # The matrix must reproduce the paper's corners: iSAX2+/DSTree for small
    # short series, DSTree/VA+file for disk-resident data, VA+file for
    # disk-resident long series.
    assert recommend_method(25, 256).method == "isax2+"
    assert recommend_method(1000, 256).method == "dstree"
    assert recommend_method(1000, 16384).method == "va+file"

    def advisor_sweep():
        return [
            recommend_method(size_gb, length).method
            for size_gb in GRID_SIZES_GB
            for length in GRID_LENGTHS
        ]

    benchmark.pedantic(advisor_sweep, rounds=1, iterations=1)


def test_fig10_empirical_check(benchmark):
    """Empirical sanity check of the advisor at small scale.

    The paper's time-based winner depends on I/O dominating at 100GB+ scale,
    which a laptop-scale Python run cannot reproduce (see DESIGN.md §2); the
    scale-invariant part of the claim is that the recommended indexes examine a
    small fraction of the raw data, which is what this check asserts.
    """
    dataset = random_walk_dataset(2_000, 128, seed=51, name="reco-check")
    workload = synth_rand_workload(128, count=8, seed=52)
    results = run_comparison(dataset, workload, EMPIRICAL_METHODS, platform=HDD)
    totals = {
        name: scenario_seconds(result, "Idx+Exact10K") for name, result in results.items()
    }
    rows = [
        {
            "method": name,
            "idx_plus_10k_s": round(totals[name], 1),
            "pruning": round(result.pruning_ratio, 3),
        }
        for name, result in results.items()
    ]
    summarize("Figure 10 (empirical check) - Idx+Exact10K totals", render_table(rows))

    advised = recommend_method(dataset_gb=100, series_length=128).method
    assert advised in results
    # The advisor's picks prune aggressively; the serial scan by definition
    # examines everything.
    assert results[advised].pruning_ratio > 0.5
    assert results["ucr-suite"].pruning_ratio == 0.0

    def winner_once():
        return min(totals, key=totals.get)

    benchmark.pedantic(winner_once, rounds=1, iterations=1)
