"""Parallel scaling: batch-query throughput vs worker count, answers verified.

Measures queries/sec of the sharded execution engine at 1/2/4/8 workers
(``shards = max(2, workers)``, so intra-query fan-out and inter-query
chunking both scale) against the single-worker baseline of the same method,
and verifies in-benchmark — at *every* worker count, so the concurrent
configurations are checked, not just the sequential fallback — that the
sharded answers are identical to the unsharded method's (positions exactly;
distances exactly for per-query paths, to float tolerance for the GEMM batch
kernels, whose last-ulp tile-shape sensitivity is a documented batch-API
property).

The benchmark has an **executor dimension** (``--executor thread|process|both``):

* ``thread`` (the default, and the historical configuration): workers scale
  only where NumPy kernels release the GIL — flat scans and large-leaf tree
  configurations.
* ``process``: shards run on a persistent warm process pool.  This is where
  *Python-heavy tree descent* scales: the ``dstree-descent`` configuration
  (small leaves, so interpreted traversal dominates) flatlines under threads
  (the GIL serializes it) but speeds up with process workers.  Answers remain
  byte-identical to thread mode and the unsharded baseline.

The default thread configuration mirrors the acceptance setting — a seeded
100k x 128 random-walk dataset, 100-query batches — where 4 workers are
required to reach >= 2.5x the 1-worker throughput for the flat scan and
>= 1.8x for at least two tree indexes; the process gate requires >= 1.5x at
4 workers for ``dstree-descent`` (thread mode is exempt there — the flatline
is the point).  Scaling obviously requires cores: the report records
``os.cpu_count()`` (and honest ~1.0x speedups on a single-CPU machine) so CI
artifacts are interpretable, and ``--require-gates`` skips the speedup gates
below 4 CPUs.  Per-worker BLAS threading is pinned to 1 before NumPy loads so
the 1-worker baseline is not itself secretly parallel.

Results are also written as JSON (``BENCH_parallel_scaling.json`` by default)
so CI can archive the scaling trajectory across commits.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py            # full
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke --executor process

Not collected under plain pytest (see conftest.py); set RUN_BENCHMARKS=1 to
opt the benchmark suite into a pytest run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# Pin per-process BLAS threading *before* NumPy loads: the scaling claim is
# about our worker pool, and an auto-threaded baseline GEMM would both blur
# the 1-worker reference and oversubscribe the cores under 4+ workers.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402  (after the BLAS pinning above)

#: methods measured, as label -> (registry name, params).  Tree leaf sizes are
#: large enough that leaf-scan kernels (GIL-releasing) dominate traversal.
METHODS = {
    "flat": ("flat", {}),
    "isax2+": ("isax2+", {"leaf_capacity": 2000}),
    "dstree": ("dstree", {"leaf_capacity": 2000}),
}

#: the Python-heavy configuration: small leaves make interpreted tree descent
#: dominate, which threads cannot parallelize (the GIL serializes it) and
#: processes can.  Measured whenever the process executor is in play, on both
#: executors, so the thread flatline and the process speedup sit side by side.
DESCENT_METHODS = {
    "dstree-descent": ("dstree", {"leaf_capacity": 64}),
}

WORKER_COUNTS = (1, 2, 4, 8)

#: thread-mode acceptance gates at 4 workers (meaningful on >= 4 physical cores).
GATES = {"flat": 2.5, "isax2+": 1.8, "dstree": 1.8}

#: process-mode gate at 4 workers: multi-core speedup on Python-heavy descent,
#: the configuration where thread mode is exempt because it cannot scale.
PROCESS_GATES = {"dstree-descent": 1.5}


def _verify_answers(base, sharded, queries, k: int, vectorized: bool) -> bool:
    """Sharded answers must equal the unsharded baseline on every query."""
    fan = sharded.knn_exact_batch(queries, k=k)
    for a, b in zip(base, fan):
        if a.positions() != b.positions():
            return False
        if vectorized:
            if not np.allclose(a.distances(), b.distances(), rtol=1e-9, atol=1e-6):
                return False
        elif a.distances() != b.distances():
            return False
    return True


def _throughput(method, queries, k: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        method.knn_exact_batch(queries, k=k)
        best = min(best, time.perf_counter() - start)
    return queries.shape[0] / best


def _methods_for(executor: str, executors: tuple[str, ...]) -> dict:
    methods = dict(METHODS)
    # The descent configuration exists to contrast the executors, so it is
    # measured whenever process mode is part of the run — on both executors
    # when comparing, never in the legacy thread-only configuration.
    if "process" in executors:
        methods.update(DESCENT_METHODS)
    return methods


def run(
    count: int,
    length: int,
    query_count: int,
    k: int,
    repeats: int,
    executors: tuple[str, ...],
) -> list[dict]:
    from repro import SeriesStore, create_method
    from repro.workloads import random_walk_dataset, synth_rand_workload

    dataset = random_walk_dataset(count, length, seed=2018, name="parallel-scaling")
    queries = np.vstack(
        [
            np.asarray(q.series, dtype=np.float64)
            for q in synth_rand_workload(length, count=query_count, seed=99)
        ]
    )

    baselines: dict[str, list] = {}
    rows = []
    for executor in executors:
        for label, (name, params) in _methods_for(executor, executors).items():
            if label not in baselines:
                plain = create_method(name, SeriesStore(dataset), **params)
                plain.build()
                baselines[label] = plain.knn_exact_batch(queries, k=k)
                del plain
            baseline = baselines[label]
            per_worker: dict[str, float] = {}
            verified = True
            for workers in WORKER_COUNTS:
                sharded = create_method(
                    f"sharded:{name}",
                    SeriesStore(dataset),
                    shards=max(2, workers),
                    workers=workers,
                    executor=executor,
                    **params,
                )
                sharded.build()
                # Verify at every worker count: the concurrent configurations
                # are exactly the ones a concurrency bug would corrupt.
                verified = verified and _verify_answers(
                    baseline, sharded, queries, k, vectorized=name in ("flat", "mass")
                )
                sharded.knn_exact_batch(queries[:4], k=k)  # warm caches and pools
                if executor == "process":
                    # One full warm pass so every pool worker has the shard
                    # indexes cached before timing — the steady state the
                    # warm-pool design exists for.
                    sharded.knn_exact_batch(queries, k=k)
                per_worker[str(workers)] = _throughput(sharded, queries, k, repeats)
                sharded.close()  # release per-method resources between configs
            base = per_worker[str(WORKER_COUNTS[0])]
            rows.append(
                {
                    "method": label,
                    "executor": executor,
                    "series": count,
                    "length": length,
                    "queries": query_count,
                    "k": k,
                    "queries_per_s": per_worker,
                    "speedup_vs_1": {w: qps / base for w, qps in per_worker.items()},
                    "answers_match": verified,
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized run")
    parser.add_argument("--count", type=int, default=100_000, help="series in the dataset")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--queries", type=int, default=100, help="queries per batch")
    parser.add_argument("--k", type=int, default=10, help="neighbors per query")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--executor",
        default="thread",
        choices=("thread", "process", "both"),
        help="fan-out backend(s) to measure; 'both' runs the comparison grid",
    )
    parser.add_argument(
        "--require-gates",
        action="store_true",
        help="exit non-zero unless the 4-worker speedup gates hold "
        "(skipped with a note below 4 physical cores, where they are "
        "not meaningful)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_parallel_scaling.json",
        help="path for the JSON results ('' disables writing)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.count, args.length, args.queries, args.repeats = 5_000, 64, 20, 1

    executors = ("thread", "process") if args.executor == "both" else (args.executor,)
    try:
        rows = run(args.count, args.length, args.queries, args.k, args.repeats, executors)
    finally:
        if "process" in executors:
            from repro.core.parallel import shutdown_shared_executors

            shutdown_shared_executors()
    cpus = os.cpu_count() or 1

    print(
        f"\nparallel scaling — {args.count} x {args.length} series, "
        f"{args.queries}-query batches, k={args.k}, {cpus} CPU(s)"
    )
    header = f"{'method':<15} {'executor':<9} {'answers':>8}" + "".join(
        f" {f'{w}w q/s':>10}" for w in WORKER_COUNTS
    ) + "".join(f" {f'{w}w x':>7}" for w in WORKER_COUNTS[1:])
    print(header)
    for row in rows:
        line = (
            f"{row['method']:<15} {row['executor']:<9} "
            f"{'match' if row['answers_match'] else 'DIFFER':>8}"
        )
        for w in WORKER_COUNTS:
            line += f" {row['queries_per_s'][str(w)]:>10.1f}"
        for w in WORKER_COUNTS[1:]:
            line += f" {row['speedup_vs_1'][str(w)]:>6.2f}x"
        print(line)
    if cpus < 4:
        print(
            f"note: {cpus} CPU(s) available — worker speedups are bounded by the "
            "core count; run on a multicore host to observe scaling."
        )

    if args.json:
        payload = {
            "benchmark": "parallel_scaling",
            "count": args.count,
            "length": args.length,
            "queries": args.queries,
            "k": args.k,
            "cpus": cpus,
            "executors": list(executors),
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")

    failed = False
    for row in rows:
        if not row["answers_match"]:
            print(
                f"FAIL: sharded:{row['method']} [{row['executor']}] answers differ "
                f"from {row['method']}",
                file=sys.stderr,
            )
            failed = True
    if args.require_gates:
        if cpus < 4:
            print(
                f"gates skipped: {cpus} CPU(s) < 4 — speedup gates require a "
                "multicore host (answer verification above still applies)."
            )
        else:
            gate_plan = []
            if "thread" in executors:
                gate_plan += [("thread", name, gate) for name, gate in GATES.items()]
            if "process" in executors:
                gate_plan += [
                    ("process", name, gate) for name, gate in PROCESS_GATES.items()
                ]
            for executor, name, gate in gate_plan:
                speedup = next(
                    (
                        r["speedup_vs_1"]["4"]
                        for r in rows
                        if r["method"] == name and r["executor"] == executor
                    ),
                    None,
                )
                if speedup is None:
                    continue
                if speedup < gate:
                    print(
                        f"FAIL: sharded:{name} [{executor}] 4-worker speedup "
                        f"{speedup:.2f}x below required {gate:.2f}x",
                        file=sys.stderr,
                    )
                    failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
