"""Build throughput: series/sec of bulk-loaded vs per-series index construction.

The paper's headline cost axis is indexing time versus query time — for
several methods, building the index dominates end-to-end cost at scale, and
iSAX2+'s defining contribution is precisely its bulk-loading algorithm.  This
benchmark measures the construction throughput of the array-native bulk
loaders (``build_mode="bulk"``, the default) against the legacy per-series
insert loops (``build_mode="incremental"``) for every tree index, and verifies
on a sample of queries that both construction paths answer identically.

The default configuration mirrors the acceptance setting — a seeded
100k x 128 random-walk dataset — where the bulk loaders are required to build
iSAX2+ and DSTree at least 5x faster than the insert loops.

Results are also written as JSON (``BENCH_build_throughput.json`` by default)
so CI can archive the perf trajectory across commits.

Run directly::

    PYTHONPATH=src python benchmarks/bench_build_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_build_throughput.py --smoke    # CI

Not collected under plain pytest (see conftest.py); set RUN_BENCHMARKS=1 to
opt the benchmark suite into a pytest run.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

import numpy as np

#: methods with a bulk loader, with build parameters at benchmark scale.
METHODS = {
    "isax2+": {"leaf_capacity": 100},
    "ads+": {"leaf_capacity": 100},
    "dstree": {"leaf_capacity": 100},
    "sfa-trie": {"leaf_capacity": 500},
}

#: methods the acceptance criterion gates on (>= 5x at 100k x 128).
GATED_METHODS = ("isax2+", "dstree")


def _build_once(name: str, params: dict, dataset, mode: str):
    from repro import SeriesStore, create_method

    store = SeriesStore(dataset)
    method = create_method(name, store, build_mode=mode, **params)
    # Keep the previous build's debris out of the timed window: the
    # incremental loops leave millions of temporaries to collect, and the
    # first large allocations afterwards pay a one-time allocator/page-fault
    # penalty (~2.5s after a 100k dstree loop build) that the scratch pass
    # absorbs here instead of inside the measurement.
    gc.collect()
    scratch = np.ones((dataset.count, 4 * dataset.length))
    scratch *= 2.0
    del scratch
    start = time.perf_counter()
    method.build()
    return method, time.perf_counter() - start


def _answers_match(bulk_method, loop_method, queries, k: int) -> bool:
    """Spot-check that both construction paths answer queries identically."""
    from repro.core.queries import KnnQuery

    for query in queries:
        a = bulk_method.knn_exact(KnnQuery(series=query, k=k))
        b = loop_method.knn_exact(KnnQuery(series=query, k=k))
        if not np.allclose(a.distances(), b.distances(), rtol=1e-9, atol=1e-9):
            return False
    return True


def run(count: int, length: int, check_queries: int, k: int) -> list[dict]:
    from repro.workloads import random_walk_dataset, synth_rand_workload

    dataset = random_walk_dataset(count, length, seed=2018, name="build-throughput")
    queries = [
        np.asarray(q.series, dtype=np.float64)
        for q in synth_rand_workload(length, count=check_queries, seed=77)
    ]

    rows = []
    for name, params in METHODS.items():
        bulk_method, bulk_s = _build_once(name, params, dataset, "bulk")
        loop_method, loop_s = _build_once(name, params, dataset, "incremental")
        rows.append(
            {
                "method": name,
                "series": count,
                "length": length,
                "loop_series_per_s": count / loop_s,
                "bulk_series_per_s": count / bulk_s,
                "loop_seconds": loop_s,
                "bulk_seconds": bulk_s,
                "speedup": loop_s / bulk_s,
                "answers_match": _answers_match(bulk_method, loop_method, queries, k),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized run")
    parser.add_argument("--count", type=int, default=100_000, help="series in the dataset")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--check-queries", type=int, default=5, help="equivalence spot-check queries")
    parser.add_argument("--k", type=int, default=10, help="neighbors per spot-check query")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless iSAX2+ and DSTree reach this bulk speedup",
    )
    parser.add_argument(
        "--json",
        default="BENCH_build_throughput.json",
        help="path for the JSON results ('' disables writing)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.count, args.length = 5_000, 64

    rows = run(args.count, args.length, args.check_queries, args.k)

    print(f"\nbuild throughput — {args.count} x {args.length} series")
    print(
        f"{'method':<10} {'loop series/s':>14} {'bulk series/s':>14} "
        f"{'speedup':>9} {'answers':>8}"
    )
    for row in rows:
        print(
            f"{row['method']:<10} {row['loop_series_per_s']:>14.0f} "
            f"{row['bulk_series_per_s']:>14.0f} {row['speedup']:>8.1f}x "
            f"{'match' if row['answers_match'] else 'DIFFER':>8}"
        )

    if args.json:
        payload = {
            "benchmark": "build_throughput",
            "count": args.count,
            "length": args.length,
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")

    failed = False
    for row in rows:
        if not row["answers_match"]:
            print(
                f"FAIL: {row['method']} bulk and incremental builds answer differently",
                file=sys.stderr,
            )
            failed = True
    if args.min_speedup is not None:
        for name in GATED_METHODS:
            speedup = next(r["speedup"] for r in rows if r["method"] == name)
            if speedup < args.min_speedup:
                print(
                    f"FAIL: {name} bulk speedup {speedup:.2f}x below required "
                    f"{args.min_speedup:.2f}x",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
