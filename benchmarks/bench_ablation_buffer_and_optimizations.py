"""Ablation benches for the design choices DESIGN.md calls out.

The paper tunes two things beyond the leaf size: the construction buffer size
(§4.3.1, "all methods benefit from a larger buffer size except ADS+"), and it
applies the UCR-Suite distance optimizations (early abandoning, reordering) to
every method.  These benches measure both at small scale:

* buffer-size ablation — spills vs buffer budget during iSAX2+/DSTree builds;
* early-abandoning ablation — UCR-Suite scan with and without the optimization;
* summarization-resolution ablation — pruning as a function of the number of
  segments/coefficients (the paper fixes 16 for all methods).
"""

from __future__ import annotations


from repro import SeriesStore, create_method
from repro.evaluation import HDD, render_table, run_experiment

from .conftest import dataset_for, summarize, workload_for


def test_ablation_buffer_size(benchmark):
    dataset = dataset_for(100)
    rows = []
    for budget in (None, 2_000, 500, 100):
        store = SeriesStore(dataset)
        index = create_method("dstree", store, leaf_capacity=100, buffer_capacity=budget)
        index.build()
        spills = index._buffer.stats.spills if index._buffer is not None else 0
        rows.append(
            {
                "buffer_series": "unbounded" if budget is None else budget,
                "spills": spills,
                "build_random_io": index.index_stats.random_accesses,
                "build_pages": index.index_stats.sequential_pages,
            }
        )
    summarize("Ablation - construction buffer size (DSTree)", render_table(rows))
    # Smaller buffers can only increase spill I/O.
    assert rows[-1]["build_random_io"] >= rows[0]["build_random_io"]

    def build_once():
        store = SeriesStore(dataset)
        index = create_method("dstree", store, leaf_capacity=100, buffer_capacity=500)
        index.build()
        return index.index_stats.random_accesses

    benchmark.pedantic(build_once, rounds=1, iterations=1)


def test_ablation_early_abandoning(benchmark):
    dataset = dataset_for(50)
    workload = workload_for(count=5)
    rows = []
    for enabled in (True, False):
        result = run_experiment(
            dataset,
            workload,
            "ucr-suite",
            platform=HDD,
            method_params={"use_early_abandoning": enabled},
        )
        rows.append(
            {
                "early_abandoning": enabled,
                "query_cpu_s": round(result.query_cpu_seconds, 3),
                "query_s": round(result.query_seconds, 3),
            }
        )
    summarize("Ablation - UCR-Suite early abandoning", render_table(rows))

    def scan_once():
        return run_experiment(
            dataset, workload, "ucr-suite", platform=HDD,
            method_params={"use_early_abandoning": True},
        ).query_cpu_seconds

    benchmark.pedantic(scan_once, rounds=1, iterations=1)


def test_ablation_summary_resolution(benchmark):
    """Pruning ratio as a function of the summary resolution (segments)."""
    dataset = dataset_for(50)
    workload = workload_for(count=5)
    rows = []
    pruning_by_segments = {}
    for segments in (4, 8, 16, 32):
        result = run_experiment(
            dataset,
            workload,
            "isax2+",
            platform=HDD,
            method_params={"segments": segments, "leaf_capacity": 100},
        )
        pruning_by_segments[segments] = result.pruning_ratio
        rows.append(
            {
                "segments": segments,
                "pruning": round(result.pruning_ratio, 3),
                "query_s": round(result.query_seconds, 3),
            }
        )
    summarize("Ablation - iSAX2+ summary resolution (segments)", render_table(rows))
    # More segments means a finer summary and at least comparable pruning.
    assert pruning_by_segments[32] >= pruning_by_segments[4] - 0.05

    def one_cell():
        return run_experiment(
            dataset, workload, "isax2+", platform=HDD,
            method_params={"segments": 16, "leaf_capacity": 100},
        ).pruning_ratio

    benchmark.pedantic(one_cell, rounds=1, iterations=1)
