"""Figure 6 — scalability comparison of the best methods on the HDD platform.

Four panels: indexing only (Idx), 100 exact queries (Exact100), indexing plus
100 queries (Idx+Exact100), and indexing plus an extrapolated 10,000-query
workload (Idx+Exact10K), across dataset sizes up to 1TB.  The paper's headline
findings for the HDD box: ADS+ wins indexing, DSTree wins query answering on
out-of-memory datasets, VA+file wins Idx+Exact100 on large datasets, and the
skip-sequential methods converge to (or fall behind) the serial scan.
"""

from __future__ import annotations

from repro.evaluation import HDD, render_series, scenario_seconds

from .conftest import BEST_METHODS, LARGE_SIZE_SWEEP, dataset_for, run_cell, summarize, workload_for

SCENARIO_PANELS = ("Idx", "Exact100", "Idx+Exact100", "Idx+Exact10K")


def test_fig06_hdd_scalability(benchmark):
    workload = workload_for(count=5)
    panels = {scenario: {m: [] for m in BEST_METHODS} for scenario in SCENARIO_PANELS}
    build_times = {}
    series_examined = {}
    for paper_gb in LARGE_SIZE_SWEEP:
        dataset = dataset_for(paper_gb)
        for method in BEST_METHODS:
            result = run_cell(dataset, workload, method, platform=HDD)
            for scenario in SCENARIO_PANELS:
                panels[scenario][method].append(
                    (paper_gb, round(scenario_seconds(result, scenario), 3))
                )
            if paper_gb == max(LARGE_SIZE_SWEEP):
                build_times[method] = result.build_seconds
                series_examined[method] = sum(
                    s.series_examined for s in result.query_stats
                )

    for scenario in SCENARIO_PANELS:
        summarize(
            f"Figure 6 ({scenario}) - HDD platform, total time in seconds",
            render_series(panels[scenario], x_label="dataset_gb"),
        )

    # Scale-invariant shape checks from the paper: ADS+ builds faster than
    # DSTree (it indexes summaries only), and the DSTree touches far less raw
    # data per query than the serial scan (the driver of its query-time win at
    # paper scale).
    assert build_times["ads+"] < build_times["dstree"]
    assert series_examined["dstree"] < series_examined["ucr-suite"]

    dataset = dataset_for(min(LARGE_SIZE_SWEEP))

    def one_cell():
        return run_cell(dataset, workload, "isax2+", platform=HDD).total_seconds

    benchmark.pedantic(one_cell, rounds=1, iterations=1)
