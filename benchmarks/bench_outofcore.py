"""Out-of-core serving: build + query throughput and peak RSS, memory vs mmap.

The point of the storage-backend layer is that a dataset file larger than RAM
can be built over and queried without ever materializing the collection.  This
benchmark makes that claim measurable:

1. a random-walk dataset is *streamed* to a ``.npy`` file chunk-by-chunk
   (bounded generation memory, any size);
2. for each (method, backend) pair, a **separate subprocess** opens the file,
   builds the method, answers a query workload per-query and as one batch, and
   reports its peak RSS twice — once right after the build (the tree-build
   high-water mark) and once at the end — which a single shared process could
   not provide;
3. the parent verifies the answers are **byte-identical** across backends
   (positions and distances hashed in the child) and writes everything to a
   JSON artifact (``BENCH_outofcore.json``) for CI archiving.

On the memory backend the collection (plus float64 staging) lands in the
process heap; on the mmap backend every build streams over
``SeriesStore.scan_blocks``/``peek_chunks`` and every flat scan's chunk pass
drops consumed pages, so the resident set stays far below the raw file size —
for the tree indexes too, whose bulk builds hold compact summary matrices
instead of the float64 collection.  ``--require-gates`` enforces exactly that:

* the flat scan's mmap peak RSS must stay below the raw file size and below
  the memory backend's peak;
* every tree index's mmap *build* peak must stay below the memory backend's
  build peak and must not grow by more than one file size over interpreter
  startup (the historical in-RAM builds cost ~3.5x the file).

Peak RSS is probed from ``/proc/self/status`` ``VmHWM:`` (per-address-space,
reset on exec).  On platforms without it (macOS dev boxes) the probe degrades
to ``ru_maxrss`` — which survives fork+exec and therefore reports the parent's
high-water mark as the child's floor — so the numbers are still recorded but
every RSS gate is skipped with a platform note instead of failing or crashing.

Run directly::

    PYTHONPATH=src python benchmarks/bench_outofcore.py            # full (~100 MiB file)
    PYTHONPATH=src python benchmarks/bench_outofcore.py --smoke    # CI

Not collected under plain pytest (see conftest.py); set RUN_BENCHMARKS=1 to
opt the benchmark suite into a pytest run.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time

#: (method, params) pairs covering the acceptance surface: a streamed scan,
#: all four tree indexes (streamed bulk builds), and the sharded wrapper.
METHODS = {
    "flat": {},
    "isax2+": {"leaf_capacity": 1000},
    "ads+": {"leaf_capacity": 1000},
    "dstree": {"leaf_capacity": 2000},
    "sfa-trie": {"leaf_capacity": 2000},
    "sharded:flat": {"shards": 2, "workers": 2},
}

#: methods whose mmap build-phase RSS is gated (tree bulk builds).
TREE_METHODS = ("isax2+", "ads+", "dstree", "sfa-trie")

BACKENDS = ("memory", "mmap")

#: backends accepted by --backends; "compressed" serves the quantized .rcz
#: conversion of the dataset while memory/mmap serve its *dequantized* .npy,
#: so answers stay byte-comparable across all three.
ALL_BACKENDS = ("memory", "mmap", "compressed")

#: below this file size the RSS gates are skipped with a note: interpreter
#: overhead (tens of MiB) dwarfs the data and any gate would measure noise.
MIN_GATE_FILE_BYTES = 32 * 2**20


def _peak_rss() -> tuple[int, str]:
    """Peak RSS in bytes plus the name of the probe that produced it.

    Prefers ``VmHWM`` (per-address-space, resets on exec); degrades to
    ``ru_maxrss`` where /proc is unavailable.  ``ru_maxrss`` survives
    fork+exec and would report the *parent's* high-water mark as the child's
    floor, so callers must not gate on it — hence the probe name travels with
    the number.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024, "vmhwm"
    except OSError:
        pass
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return int(rss) * (1 if sys.platform == "darwin" else 1024), "ru_maxrss"
    except Exception:  # pragma: no cover - resource-less platforms
        return 0, "unavailable"


def _child(spec: dict) -> dict:
    """One (method, backend) phase, run in its own process for honest RSS."""
    import numpy as np

    from repro import Dataset, SeriesStore, create_method
    from repro.workloads import synth_rand_workload

    startup_rss, probe = _peak_rss()
    dataset = Dataset.from_file(spec["path"])
    store = SeriesStore(dataset, backend=spec["backend"])
    method = create_method(spec["method"], store, **spec["params"])

    start = time.perf_counter()
    method.build()
    build_seconds = time.perf_counter() - start
    build_rss, _ = _peak_rss()

    queries = np.vstack(
        [
            np.asarray(q.series, dtype=np.float64)
            for q in synth_rand_workload(dataset.length, count=spec["queries"], seed=77)
        ]
    )
    k = spec["k"]

    digest = hashlib.sha256()
    start = time.perf_counter()
    for q in queries:
        result = method.knn_exact_batch(q[np.newaxis, :], k=k)[0]
        digest.update(repr(result.positions()).encode())
        digest.update(repr(result.distances()).encode())
    per_query_seconds = (time.perf_counter() - start) / len(queries)

    start = time.perf_counter()
    batch = method.knn_exact_batch(queries, k=k)
    batch_seconds = time.perf_counter() - start
    for result in batch:
        digest.update(repr(result.positions()).encode())
        digest.update(repr(result.distances()).encode())

    if hasattr(method, "close"):
        method.close()
    peak_rss, _ = _peak_rss()
    return {
        "method": spec["method"],
        "backend": spec["backend"],
        "count": dataset.count,
        "length": dataset.length,
        "build_s": build_seconds,
        "query_s": per_query_seconds,
        "batch_queries_per_s": len(queries) / batch_seconds,
        "answers_digest": digest.hexdigest(),
        "startup_rss_bytes": startup_rss,
        "build_peak_rss_bytes": build_rss,
        "peak_rss_bytes": peak_rss,
        "rss_probe": probe,
    }


def run(
    paths: dict, methods: dict, queries: int, k: int, backends: tuple = BACKENDS
) -> list[dict]:
    rows = []
    for method, params in methods.items():
        for backend in backends:
            spec = {
                "path": paths[backend],
                "method": method,
                "params": params,
                "backend": backend,
                "queries": queries,
                "k": k,
            }
            proc = subprocess.run(
                [sys.executable, os.path.abspath(__file__), "--_child", json.dumps(spec)],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{method}/{backend} child failed:\n{proc.stderr}"
                )
            rows.append(json.loads(proc.stdout))
    return rows


def check_gates(by_method: dict, file_bytes: int, methods: dict) -> list[str]:
    """RSS-gate failures (empty = pass).  Callers pre-check the probe.

    The out-of-core backends (mmap, compressed — whichever ran) are gated the
    same way for the flat scan: peak RSS below the raw collection size and
    below the memory backend's peak.
    """
    failures = []
    if "flat" in methods:
        flat = by_method["flat"]
        for backend in ("mmap", "compressed"):
            if backend not in flat:
                continue
            rss = flat[backend]["peak_rss_bytes"]
            if rss >= file_bytes:
                failures.append(
                    f"flat/{backend} peak RSS {rss / 2**20:.1f} MiB is not below "
                    f"the raw collection size {file_bytes / 2**20:.1f} MiB"
                )
            if "memory" in flat and rss >= flat["memory"]["peak_rss_bytes"]:
                failures.append(
                    f"flat/{backend} peak RSS is not below the memory backend's"
                )
    for method in TREE_METHODS:
        if method not in methods:
            continue
        backends = by_method[method]
        if "mmap" not in backends:
            continue
        build_rss = backends["mmap"]["build_peak_rss_bytes"]
        startup = backends["mmap"]["startup_rss_bytes"]
        # The streamed build may hold one chunk plus the summary matrices and
        # the index itself — bounded by well under one file size — where the
        # historical in-RAM builds cost ~3.5x the file in float64 staging.
        if build_rss - startup >= file_bytes:
            failures.append(
                f"{method}/mmap build peak RSS grew {(build_rss - startup) / 2**20:.1f} "
                f"MiB over startup, not below the file size {file_bytes / 2**20:.1f} MiB"
            )
        if (
            "memory" in backends
            and build_rss >= backends["memory"]["build_peak_rss_bytes"]
        ):
            failures.append(
                f"{method}/mmap build peak RSS is not below the memory backend's"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized run")
    parser.add_argument("--count", type=int, default=200_000, help="series in the dataset")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--queries", type=int, default=20, help="queries in the workload")
    parser.add_argument("--k", type=int, default=10, help="neighbors per query")
    parser.add_argument(
        "--methods",
        default=None,
        help="comma-separated subset of methods to run "
        f"(default: all of {', '.join(METHODS)})",
    )
    parser.add_argument(
        "--dataset-file",
        default=None,
        help="reuse an existing dataset file instead of generating one "
        "(a .rcz file is dequantized to a temporary .npy for the float "
        "backends; any other file is quantized to a temporary .rcz when "
        "'compressed' is among --backends)",
    )
    parser.add_argument(
        "--backends",
        default=",".join(BACKENDS),
        help="comma-separated backends to serve from "
        f"(subset of {', '.join(ALL_BACKENDS)}; default memory,mmap)",
    )
    parser.add_argument(
        "--require-gates",
        action="store_true",
        help="fail unless the out-of-core peak-RSS gates hold: the flat scan "
        "on mmap (and compressed, when run) stays below the raw collection "
        "size, and every tree index's mmap build phase stays below the memory "
        "backend's and grows less than one file size over startup (meaningful "
        "only when the file dwarfs interpreter overhead)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_outofcore.json",
        help="path for the JSON results ('' disables writing)",
    )
    parser.add_argument("--_child", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args._child is not None:
        print(json.dumps(_child(json.loads(args._child))))
        return 0

    if args.smoke:
        args.count, args.length, args.queries = 4_000, 64, 8

    methods = dict(METHODS)
    if args.methods:
        wanted = [m.strip() for m in args.methods.split(",") if m.strip()]
        unknown = [m for m in wanted if m not in METHODS]
        if unknown:
            parser.error(f"unknown methods {unknown}; available: {list(METHODS)}")
        if not wanted:
            parser.error(f"--methods selected nothing; available: {list(METHODS)}")
        methods = {m: METHODS[m] for m in wanted}

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    bad = [b for b in backends if b not in ALL_BACKENDS]
    if bad or not backends:
        parser.error(f"--backends must be a subset of {', '.join(ALL_BACKENDS)}")

    tmpdir = tempfile.TemporaryDirectory(prefix="bench-outofcore-")
    if args.dataset_file:
        path = args.dataset_file
        file_bytes = os.path.getsize(path)
    else:
        from repro.workloads import random_walk_to_file

        path = os.path.join(tmpdir.name, "walks.npy")
        start = time.perf_counter()
        random_walk_to_file(path, args.count, args.length, seed=2018, chunk_size=16384)
        file_bytes = os.path.getsize(path)
        print(
            f"streamed {args.count} x {args.length} series "
            f"({file_bytes / 2**20:.1f} MiB) in {time.perf_counter() - start:.1f}s"
        )

    # Per-backend serving paths.  Cross-backend digests must compare the same
    # values, and quantization is lossy — so when "compressed" runs, the float
    # backends serve the *dequantized* collection (a .rcz input is expanded;
    # any other input is quantized to a temporary .rcz, then expanded back).
    paths = {backend: path for backend in backends}
    rcz_bytes = None
    if "compressed" in backends or path.endswith(".rcz"):
        from repro import Dataset

        if path.endswith(".rcz"):
            rcz_path = path
            source = Dataset.from_file(path)
        else:
            rcz_path = os.path.join(tmpdir.name, "walks.rcz")
            source = Dataset.from_file(path).to_compressed(rcz_path)
        rcz_bytes = os.path.getsize(rcz_path)
        paths["compressed"] = rcz_path
        float_backends = [b for b in backends if b != "compressed"]
        if float_backends:
            deq_path = os.path.join(tmpdir.name, "walks_deq.npy")
            source.to_file(deq_path)
            file_bytes = os.path.getsize(deq_path)
            for backend in float_backends:
                paths[backend] = deq_path
        print(
            f"compressed collection: {rcz_bytes / 2**20:.1f} MiB .rcz "
            f"({file_bytes / rcz_bytes:.2f}x smaller than raw)"
        )

    try:
        rows = run(paths, methods, args.queries, args.k, backends)
    finally:
        tmpdir.cleanup()

    by_method: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_method.setdefault(row["method"], {})[row["backend"]] = row

    print(f"\nout-of-core serving — {file_bytes / 2**20:.1f} MiB raw file")
    print(
        f"{'method':<14} {'backend':<8} {'build s':>8} {'build RSS':>10} "
        f"{'query s':>9} {'batch q/s':>10} {'peak RSS MiB':>13} {'answers':>8}"
    )
    failed = False
    for method, backend_rows in by_method.items():
        match = len({r["answers_digest"] for r in backend_rows.values()}) == 1
        if not match:
            print(f"FAIL: {method} answers differ across backends", file=sys.stderr)
            failed = True
        for backend in backends:
            row = backend_rows[backend]
            row["answers_match"] = match
            print(
                f"{method:<14} {backend:<8} {row['build_s']:>8.2f} "
                f"{row['build_peak_rss_bytes'] / 2**20:>10.1f} "
                f"{row['query_s']:>9.4f} {row['batch_queries_per_s']:>10.1f} "
                f"{row['peak_rss_bytes'] / 2**20:>13.1f} "
                f"{'match' if match else 'DIFFER':>8}"
            )

    probe = rows[0]["rss_probe"]
    gates_checked = probe == "vmhwm" and file_bytes >= MIN_GATE_FILE_BYTES
    if args.require_gates:
        if probe != "vmhwm":
            print(
                f"note: RSS probe is {probe!r} (no VmHWM on this platform); "
                "peak-RSS numbers are recorded but the gates are skipped",
            )
        elif file_bytes < MIN_GATE_FILE_BYTES:
            print(
                f"note: {file_bytes / 2**20:.1f} MiB file is below the "
                f"{MIN_GATE_FILE_BYTES / 2**20:.0f} MiB gate floor (interpreter "
                "overhead would dominate); RSS gates skipped",
            )
        else:
            for failure in check_gates(by_method, file_bytes, methods):
                print(f"FAIL: {failure}", file=sys.stderr)
                failed = True

    if args.json:
        payload = {
            "benchmark": "outofcore",
            # The children report the actual file shape, which need not match
            # the synthetic-generation defaults when --dataset-file is given.
            "count": rows[0]["count"],
            "length": rows[0]["length"],
            "queries": args.queries,
            "k": args.k,
            "file_bytes": file_bytes,
            "rcz_bytes": rcz_bytes,
            "backends": list(backends),
            "rss_probe": probe,
            "gates_checked": bool(args.require_gates and gates_checked),
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
