"""Batch-query throughput: queries/sec of ``knn_exact_batch`` vs per-query search.

The vectorized batch execution layer answers a whole query batch with one
``(Q, N)`` distance-matrix tile pass; this benchmark measures the resulting
throughput win over driving the same optimized kernels one query at a time.
The default configuration mirrors the acceptance setting — a seeded
10k x 128 random-walk dataset and 100 queries — and reports queries/sec for
both paths plus the speedup, for the flat scan (the pure showcase of the
batch layer), MASS (shared candidate FFTs), and iSAX2+ (whose exact search
computes node lower bounds through the batch MINDIST kernel; its batch API is
the default per-query loop, so its speedup hovers around 1x and serves as the
control).

Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --smoke    # CI

Not collected under plain pytest (see conftest.py); set RUN_BENCHMARKS=1 to
opt the benchmark suite into a pytest run.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _timed(fn, repeats: int = 1) -> float:
    """Best-of-N wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(
    count: int,
    length: int,
    query_count: int,
    k: int,
    methods: dict,
    repeats: int,
) -> list[dict]:
    from repro import SeriesStore, create_method
    from repro.core.queries import KnnQuery
    from repro.workloads import random_walk_dataset, synth_rand_workload

    dataset = random_walk_dataset(count, length, seed=2018, name="throughput")
    queries = np.vstack(
        [
            np.asarray(q.series, dtype=np.float64)
            for q in synth_rand_workload(length, count=query_count, seed=77)
        ]
    )

    rows = []
    for name, params in methods.items():
        store = SeriesStore(dataset)
        method = create_method(name, store, **params)
        method.build()

        def per_query():
            for q in queries:
                method.knn_exact(KnnQuery(series=q, k=k))

        def batched():
            method.knn_exact_batch(queries, k=k)

        # Warm up both paths (BLAS thread pools, breakpoint caches, ...).
        method.knn_exact(KnnQuery(series=queries[0], k=k))
        method.knn_exact_batch(queries[:2], k=k)

        single_s = _timed(per_query, repeats)
        batch_s = _timed(batched, repeats)
        rows.append(
            {
                "method": name,
                "single_qps": query_count / single_s,
                "batch_qps": query_count / batch_s,
                "speedup": single_s / batch_s,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized run")
    parser.add_argument("--count", type=int, default=10_000, help="series in the dataset")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--queries", type=int, default=100, help="queries per batch")
    parser.add_argument("--k", type=int, default=10, help="neighbors per query")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the flat-scan batch speedup reaches this",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.count, args.length, args.queries, args.repeats = 2_000, 64, 20, 1

    methods = {
        "flat": {},
        "mass": {},
        "isax2+": {"leaf_capacity": 100},
    }
    rows = run(args.count, args.length, args.queries, args.k, methods, args.repeats)

    print(
        f"\nbatch throughput — {args.count} x {args.length} series, "
        f"{args.queries} queries, k={args.k}"
    )
    print(f"{'method':<10} {'single q/s':>12} {'batch q/s':>12} {'speedup':>9}")
    for row in rows:
        print(
            f"{row['method']:<10} {row['single_qps']:>12.1f} "
            f"{row['batch_qps']:>12.1f} {row['speedup']:>8.2f}x"
        )

    flat_speedup = next(r["speedup"] for r in rows if r["method"] == "flat")
    if args.min_speedup is not None and flat_speedup < args.min_speedup:
        print(
            f"FAIL: flat-scan batch speedup {flat_speedup:.2f}x "
            f"below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
