"""Figure 3 — per-method scalability with increasing dataset sizes.

The paper grows synthetic datasets from 25GB to 250GB and reports, for each of
the ten methods, the index-building and query-answering time (split into CPU
and I/O).  This benchmark regenerates one table per method with the same
columns at reduced scale.
"""

from __future__ import annotations

import pytest

from repro.evaluation import HDD, render_table

from .conftest import METHOD_PARAMS, SIZE_SWEEP, dataset_for, run_cell, summarize, workload_for

ALL_METHODS = tuple(METHOD_PARAMS)


@pytest.mark.parametrize("method", ALL_METHODS)
def test_fig03_scalability(benchmark, method):
    workload = workload_for(count=5)
    # The slow (insertion-based, full-dimensional) trees get the smaller end of
    # the sweep, mirroring the paper's ">24 hours" cut-offs for R*-tree/M-tree.
    sizes = list(SIZE_SWEEP)
    if method in ("m-tree", "r*-tree", "stepwise", "mass"):
        sizes = sizes[:3]

    rows = []
    for paper_gb in sizes:
        dataset = dataset_for(paper_gb)
        result = run_cell(dataset, workload, method, platform=HDD)
        rows.append(
            {
                "dataset_gb": paper_gb,
                "index_cpu_s": round(result.index_stats.build_cpu_seconds, 3),
                "index_io_s": round(result.index_stats.build_io_seconds, 4),
                "query_cpu_s": round(result.query_cpu_seconds, 3),
                "query_io_s": round(result.query_io_seconds, 4),
                "total_s": round(result.total_seconds, 3),
            }
        )
    summarize(f"Figure 3 ({method}) - scalability with dataset size", render_table(rows))

    smallest = dataset_for(sizes[0])

    def one_cell():
        return run_cell(smallest, workload, method, platform=HDD).total_seconds

    benchmark.pedantic(one_cell, rounds=1, iterations=1)
