"""Compressed quantized-block storage: ratio, throughput, and pruned-scan I/O.

The compressed backend stores the collection as fixed-row blocks quantized to
int8/int16 (per-block scale/offset) and deflated, and serves exact scans in
two phases: quantized lower bounds filter whole tiles against the tightening
best-so-far radius, full precision is fetched only for survivors.  This
benchmark makes the two headline claims measurable:

1. **Compression ratio and conversion throughput** — a random-walk collection
   is streamed to ``.rcz`` at both precisions; the ratio over the raw float32
   bytes and the conversion MB/s are recorded, along with the worst-case
   quantization error of the stored (dequantized) values.
2. **Pruned-scan I/O** — the flat scan answers the same workload on the
   memory, mmap, and compressed backends; per-query ``QueryStats`` report the
   *logical* bytes (float32 terms — what a scan touches conceptually) next to
   the *physical* bytes (stored bytes actually fetched).  On memory/mmap the
   two are equal by construction; on the compressed backend the physical
   column shows the quantized filter pass plus full-precision refinement of
   the surviving tiles only.

Queries are rows of the dataset itself, so the best-so-far radius tightens
fast and the pruned scan has realistic bite.  The flat tile is kept at least
one quantization block wide — smaller tiles charge whole covering blocks per
surviving tile and would inflate the physical column.

``--require-gates`` enforces the acceptance bars:

* int8 compression ratio at least 3.5x on z-normalized random walks;
* the pruned flat scan's physical bytes at most 50% of the mmap scan's.

Everything lands in a JSON artifact (``BENCH_compression.json``) for CI.

Run directly::

    PYTHONPATH=src python benchmarks/bench_compression.py            # full
    PYTHONPATH=src python benchmarks/bench_compression.py --smoke    # CI

Not collected under plain pytest (see conftest.py); set RUN_BENCHMARKS=1 to
opt the benchmark suite into a pytest run.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

QDTYPES = ("int8", "int16")

#: serving backends compared by the scan phase; compressed serves the int8
#: conversion (the aggressive end — int16 physical bytes are ~2x).
SCAN_BACKENDS = ("memory", "mmap", "compressed")

#: acceptance bars enforced by --require-gates.
MIN_INT8_RATIO = 3.5
MAX_PRUNED_PHYSICAL_FRACTION = 0.50


def convert(dataset, tmpdir: str, raw_bytes: int) -> list[dict]:
    """Stream the collection to .rcz at every precision; ratio + throughput."""
    rows = []
    for qdtype in QDTYPES:
        path = os.path.join(tmpdir, f"walks_{qdtype}.rcz")
        start = time.perf_counter()
        compressed = dataset.to_compressed(path, qdtype=qdtype)
        seconds = time.perf_counter() - start
        stored = os.path.getsize(path)
        # Worst-case quantization error of the stored values, probed on a
        # deterministic row sample (the whole collection may not fit in RAM).
        sample = sorted({0, dataset.count - 1, *range(0, dataset.count, max(1, dataset.count // 256))})
        err = float(
            np.max(np.abs(compressed.backend.take(np.array(sample)) - dataset.row_sample(sample)))
        )
        rows.append(
            {
                "qdtype": qdtype,
                "stored_bytes": stored,
                "ratio": raw_bytes / stored,
                "convert_s": seconds,
                "convert_mb_per_s": raw_bytes / 2**20 / seconds if seconds else 0.0,
                "max_quantization_error": err,
                "path": path,
            }
        )
    return rows


def scan(raw_path: str, rcz_path: str, queries: int, k: int, length=None) -> list[dict]:
    """Flat-scan the same workload on every backend; logical vs physical I/O."""
    from repro import Dataset, SeriesStore, create_method
    from repro.core.quantize import read_rcz_info

    block_rows = read_rcz_info(rcz_path).block_rows
    rows = []
    for backend in SCAN_BACKENDS:
        dataset = Dataset.from_file(
            rcz_path if backend == "compressed" else raw_path, length=length
        )
        store = SeriesStore(dataset, backend=backend)
        # Tile at least one quantization block wide: smaller tiles charge the
        # whole covering block per surviving tile and inflate physical bytes.
        method = create_method("flat", store, tile_series=max(4096, block_rows))
        start = time.perf_counter()
        method.build()
        build_seconds = time.perf_counter() - start

        batch = np.asarray(store.read_contiguous(0, queries), dtype=np.float64)
        store.counter.reset()
        start = time.perf_counter()
        results = method.knn_exact_batch(batch, k=k)
        seconds = time.perf_counter() - start

        logical = sum(r.stats.bytes_read for r in results)
        physical = sum(r.stats.physical_bytes_read for r in results)
        examined = sum(r.stats.series_examined for r in results)
        rows.append(
            {
                "backend": backend,
                "build_s": build_seconds,
                "queries_per_s": len(batch) / seconds if seconds else 0.0,
                "logical_bytes": int(logical),
                "physical_bytes": int(physical),
                "series_examined": int(examined),
                "positions_digest": hash_answers(results),
            }
        )
    return rows


def hash_answers(results) -> str:
    import hashlib

    digest = hashlib.sha256()
    for result in results:
        digest.update(repr(result.positions()).encode())
    return digest.hexdigest()


def check_gates(convert_rows: list[dict], scan_rows: list[dict]) -> list[str]:
    """Gate failures (empty = pass)."""
    failures = []
    by_qdtype = {row["qdtype"]: row for row in convert_rows}
    ratio = by_qdtype["int8"]["ratio"]
    if ratio < MIN_INT8_RATIO:
        failures.append(
            f"int8 compression ratio {ratio:.2f}x is below the {MIN_INT8_RATIO}x bar"
        )
    by_backend = {row["backend"]: row for row in scan_rows}
    mmap_physical = by_backend["mmap"]["physical_bytes"]
    pruned_physical = by_backend["compressed"]["physical_bytes"]
    if pruned_physical > MAX_PRUNED_PHYSICAL_FRACTION * mmap_physical:
        failures.append(
            f"pruned flat scan fetched {pruned_physical / 2**20:.1f} MiB physical, "
            f"more than {MAX_PRUNED_PHYSICAL_FRACTION:.0%} of the mmap scan's "
            f"{mmap_physical / 2**20:.1f} MiB"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized run")
    parser.add_argument("--count", type=int, default=100_000, help="series in the dataset")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--queries", type=int, default=20, help="queries (dataset rows)")
    parser.add_argument("--k", type=int, default=10, help="neighbors per query")
    parser.add_argument(
        "--require-gates",
        action="store_true",
        help=f"fail unless the int8 ratio is at least {MIN_INT8_RATIO}x and the "
        f"pruned flat scan's physical bytes are at most "
        f"{MAX_PRUNED_PHYSICAL_FRACTION:.0%} of the mmap scan's",
    )
    parser.add_argument(
        "--json",
        default="BENCH_compression.json",
        help="path for the JSON results ('' disables writing)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.count, args.length, args.queries = 8_000, 64, 8

    from repro import Dataset
    from repro.workloads import random_walk_to_file

    with tempfile.TemporaryDirectory(prefix="bench-compression-") as tmpdir:
        raw_path = os.path.join(tmpdir, "walks.npy")
        start = time.perf_counter()
        random_walk_to_file(raw_path, args.count, args.length, seed=2018, chunk_size=16384)
        raw_bytes = os.path.getsize(raw_path)
        print(
            f"streamed {args.count} x {args.length} series "
            f"({raw_bytes / 2**20:.1f} MiB raw) in {time.perf_counter() - start:.1f}s"
        )

        dataset = Dataset.from_file(raw_path)
        convert_rows = convert(dataset, tmpdir, raw_bytes)
        print(f"\n{'qdtype':<7} {'stored MiB':>10} {'ratio':>7} {'conv MB/s':>10} {'max err':>10}")
        for row in convert_rows:
            print(
                f"{row['qdtype']:<7} {row['stored_bytes'] / 2**20:>10.2f} "
                f"{row['ratio']:>6.2f}x {row['convert_mb_per_s']:>10.1f} "
                f"{row['max_quantization_error']:>10.2e}"
            )

        rcz_path = next(r["path"] for r in convert_rows if r["qdtype"] == "int8")
        scan_rows = scan(raw_path, rcz_path, args.queries, args.k)

    print(
        f"\nflat scan, {args.queries} queries x k={args.k} "
        f"(logical = float32 terms, physical = stored bytes fetched)"
    )
    print(
        f"{'backend':<11} {'build s':>8} {'q/s':>8} {'logical MiB':>12} "
        f"{'physical MiB':>13} {'phys/log':>9} {'examined':>9}"
    )
    for row in scan_rows:
        frac = row["physical_bytes"] / row["logical_bytes"] if row["logical_bytes"] else 0.0
        print(
            f"{row['backend']:<11} {row['build_s']:>8.2f} {row['queries_per_s']:>8.1f} "
            f"{row['logical_bytes'] / 2**20:>12.2f} {row['physical_bytes'] / 2**20:>13.2f} "
            f"{frac:>9.2f} {row['series_examined']:>9}"
        )

    failed = False
    # The compressed backend serves dequantized values (lossy vs the original
    # floats), so neighbor *positions* — robust to the tiny perturbation on
    # self-queries — are compared, not distances.
    digests = {row["backend"]: row["positions_digest"] for row in scan_rows}
    if digests["memory"] != digests["mmap"]:
        print("FAIL: memory and mmap answers differ", flush=True)
        failed = True

    if args.require_gates:
        for failure in check_gates(convert_rows, scan_rows):
            print(f"FAIL: {failure}", flush=True)
            failed = True
        if not failed:
            print("\ngates: all green")

    if args.json:
        payload = {
            "benchmark": "compression",
            "count": args.count,
            "length": args.length,
            "queries": args.queries,
            "k": args.k,
            "raw_bytes": raw_bytes,
            "convert": [
                {k: v for k, v in row.items() if k != "path"} for row in convert_rows
            ],
            "scan": scan_rows,
            "gates_checked": bool(args.require_gates),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
