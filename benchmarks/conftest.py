"""Shared configuration and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at reduced
scale (see DESIGN.md §2 for the substitutions).  The scale knobs live here so
the whole suite stays runnable in minutes; increase them to push the harness
closer to the paper's sizes.

The "GB" labels printed by the benchmarks are *paper-equivalent* sizes: the
paper's datasets hold 25GB-1TB of float32 data, and the scaled datasets used
here keep the same series length while reducing the series count.  Labels are
computed by mapping the largest scaled dataset to the largest paper size so the
output rows read side by side with the paper's figures.
"""

from __future__ import annotations

import os

import pytest


def pytest_ignore_collect(collection_path, config):
    """Keep benchmarks out of plain pytest runs.

    The benchmark files regenerate whole paper figures and take minutes; they
    only collect when explicitly requested with ``RUN_BENCHMARKS=1``.  (Under
    the default ``python -m pytest`` invocation the ``bench_*`` filename
    pattern already skips them; this guard also covers explicit
    ``pytest benchmarks/...`` invocations.)
    """
    if os.environ.get("RUN_BENCHMARKS"):
        return None
    if collection_path.name.startswith("bench_"):
        return True
    return None

from repro.evaluation import HDD, run_experiment
from repro.workloads import random_walk_dataset, synth_rand_workload

# -- scale knobs -----------------------------------------------------------------
#: series counts standing in for the paper's 25 / 50 / 100 / 250 GB datasets.
SIZE_SWEEP = {25: 1_000, 50: 2_000, 100: 4_000, 250: 8_000}
#: series counts for the "best methods" sweep that reaches 1TB in the paper.
LARGE_SIZE_SWEEP = {25: 1_000, 100: 4_000, 1000: 16_000}
#: series lengths used by the length sweeps (the paper goes to 16384).
LENGTH_SWEEP = (64, 128, 256, 512)
#: default series length (the paper's synthetic datasets use 256).
DEFAULT_LENGTH = 128
#: number of queries per workload (the paper uses 100).
QUERY_COUNT = 10

#: per-method parameters used when a benchmark does not sweep them itself.
METHOD_PARAMS = {
    "ads+": {"leaf_capacity": 100},
    "dstree": {"leaf_capacity": 100},
    "isax2+": {"leaf_capacity": 100},
    "sfa-trie": {"leaf_capacity": 500},
    "va+file": {},
    "m-tree": {"node_capacity": 16},
    "r*-tree": {"leaf_capacity": 50},
    "stepwise": {},
    "ucr-suite": {},
    "mass": {},
}

#: the six methods the paper carries into its §4.3.3 comparison.
BEST_METHODS = ("ads+", "dstree", "isax2+", "sfa-trie", "va+file", "ucr-suite")


def dataset_for(paper_gb: int, length: int = DEFAULT_LENGTH, seed: int = 2018):
    """Synthetic dataset standing in for one of the paper's sizes.

    A paper dataset of a given size in GB holds fewer series when the series
    are longer (the paper keeps the on-disk size fixed while sweeping length),
    so the scaled series count shrinks proportionally with the length.
    """
    count = SIZE_SWEEP.get(paper_gb) or LARGE_SIZE_SWEEP.get(paper_gb)
    if count is None:
        raise KeyError(f"no scaled count configured for {paper_gb}GB")
    count = max(200, int(count * DEFAULT_LENGTH / length))
    return random_walk_dataset(count, length, seed=seed, name=f"synthetic-{paper_gb}GB")


def workload_for(length: int = DEFAULT_LENGTH, count: int = QUERY_COUNT, seed: int = 77):
    return synth_rand_workload(length, count=count, seed=seed)


def run_cell(dataset, workload, method, platform=HDD, params=None):
    """One experiment cell with the benchmark-wide default parameters."""
    return run_experiment(
        dataset,
        workload,
        method,
        platform=platform,
        method_params=params if params is not None else METHOD_PARAMS.get(method, {}),
    )


@pytest.fixture(scope="session")
def default_dataset():
    return dataset_for(100)


@pytest.fixture(scope="session")
def default_workload():
    return workload_for()


def summarize(name: str, text: str) -> None:
    """Print a benchmark's regenerated table under a recognizable banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{name}\n{banner}\n{text}\n")
