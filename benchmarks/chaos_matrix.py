"""Chaos matrix: failure scenarios x methods, reported as a JSON artifact.

Runs a grid of deterministic fault scenarios against a panel of methods and
records, per cell, what the resilience layer did: retries spent, answers
byte-identical to the fault-free baseline, corruption caught as a typed
error, degraded answers under ``allow_partial``.  CI runs this with two fixed
fault-plan seeds and uploads the matrix (``BENCH_chaos_matrix.json``) so a
regression in any scenario is visible as a diff in the artifact, not a
silently wrong answer.

Scenario kinds:

* ``transient`` — injected I/O errors + short reads; PASS means every answer
  matched the clean baseline exactly (retries are free to be nonzero).
* ``corrupt`` — damage-at-rest bit flips on a checksummed (sidecar) mmap
  store; PASS means every query raised :class:`CorruptionError`.
* ``shard-loss`` — a permanently failing shard under ``allow_partial``; PASS
  means every answer came back flagged degraded with the failed shard
  counted.
* ``kill-worker`` — a process-pool worker SIGKILLed mid-query (the
  ``kill_worker`` fault-plan budget); PASS means the shard was re-executed on
  a fresh worker, the re-execution was counted in ``stats.retries``, and the
  final answers match the fault-free baseline exactly.
* ``ingest-kill`` — a live ingest into a growable store SIGKILLed mid-extend
  or mid-checkpoint (subprocess crash harness); PASS means every acked row
  survived recovery bit-exact and the store stayed usable.
* ``live-query`` — queries against a snapshot taken while extend() keeps
  landing rows; PASS means the answers are identical to a frozen store of
  the watermarked prefix.

Run directly::

    PYTHONPATH=src python benchmarks/chaos_matrix.py --seeds 7,23

Not collected under plain pytest (see conftest.py); set RUN_BENCHMARKS=1 to
opt the benchmark suite into a pytest run.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Dataset, SeriesStore  # noqa: E402
from repro.core.faults import FaultPlan, RetryPolicy  # noqa: E402
from repro.core.integrity import CorruptionError, invalidate_manifest_cache  # noqa: E402
from repro.core.queries import KnnQuery  # noqa: E402
from repro.core.registry import create_method  # noqa: E402
from repro.workloads.generators import random_walk_dataset  # noqa: E402

#: the method panel: one scan, two trees, one summarization file, the wrapper.
METHODS = {
    "flat": {},
    "dstree": {"leaf_capacity": 50},
    "isax2+": {"leaf_capacity": 50},
    "va+file": {},
    "sharded:flat": {"shards": 3, "workers": 2},
}

#: retry budget sized for doubled-up fault kinds (transient + truncate on one
#: site can fail 2 * max_failures consecutive attempts).
RETRY = RetryPolicy(attempts=8, base_delay=1e-5, max_delay=1e-4)


def _queries(length: int, count: int = 4):
    rng = np.random.default_rng(71)
    return [
        KnnQuery(series=np.cumsum(rng.standard_normal(length)), k=3)
        for _ in range(count)
    ]


def _build(name: str, store: SeriesStore, **extra):
    params = dict(METHODS[name])
    params.update(extra)
    method = create_method(name, store, **params)
    method.build()
    return method


def _answers(method, queries):
    out = []
    for query in queries:
        result = method.knn_exact(query)
        out.append(
            [(int(n.position), float(n.distance)) for n in result.neighbors]
        )
    return out


def _transient_cell(name, dataset, queries, baseline, seed):
    plan = FaultPlan(seed=seed, transient=0.2, truncate=0.1)
    store = SeriesStore(dataset, faults=plan, retry=RETRY)
    method = _build(name, store)
    answers = _answers(method, queries)
    return {
        "scenario": "transient",
        "plan": plan.describe(),
        "identical": answers == baseline,
        "retries": int(store.counter.retries),
        "ok": answers == baseline,
    }


def _corrupt_cell(name, dataset_file, queries, seed):
    invalidate_manifest_cache()
    plan = FaultPlan(seed=seed, corrupt=1.0, region_rows=64)
    store = SeriesStore(
        Dataset.from_file(dataset_file), faults=plan, retry=RETRY
    )
    caught = 0
    wrong = 0
    try:
        method = _build(name, store)
        for query in queries:
            try:
                method.knn_exact(query)
                wrong += 1
            except CorruptionError:
                caught += 1
    except CorruptionError:
        # Corruption surfaced during the build scan: every query is "caught"
        # by construction, since the method refuses to come up over bad data.
        caught = len(queries)
    return {
        "scenario": "corrupt",
        "plan": plan.describe(),
        "caught": caught,
        "silently_wrong": wrong,
        "ok": wrong == 0 and caught == len(queries),
    }


def _shard_loss_cell(dataset, queries, baseline):
    store = SeriesStore(dataset)
    method = _build("sharded:flat", store, allow_partial=True)

    def dying(query, k, stats):
        raise RuntimeError("chaos-matrix killed worker")

    method._shards[0].method._knn_exact = dying
    degraded = 0
    for query in queries:
        result = method.knn_exact(query)
        if result.stats.degraded and result.stats.shards_failed == 1:
            degraded += 1
    method.close()
    return {
        "scenario": "shard-loss",
        "degraded": degraded,
        "ok": degraded == len(queries),
    }


def _kill_worker_cell(dataset, queries, seed):
    """SIGKILL a process-pool worker mid-query; the shard must re-execute."""
    from repro.core.faults import reset_crash_counters
    from repro.core.parallel import shutdown_shared_executors

    baseline = _answers(_build("sharded:flat", SeriesStore(dataset)), queries)
    reset_crash_counters()  # the kill budget is a process-global tally
    store = SeriesStore(dataset)
    method = _build("sharded:flat", store, executor="process")
    # Arm the kill *after* build so construction survives and the SIGKILL
    # lands on a query-serving worker — the resilience path under test.
    store.faults = FaultPlan(seed=seed, kill_worker=1)
    answers = []
    reexecutions = 0
    try:
        for query in queries:
            result = method.knn_exact(query)
            reexecutions += int(result.stats.retries)
            answers.append(
                [(int(n.position), float(n.distance)) for n in result.neighbors]
            )
    finally:
        method.close()
        shutdown_shared_executors()
        reset_crash_counters()
    return {
        "scenario": "kill-worker",
        "identical": answers == baseline,
        "reexecutions": reexecutions,
        "ok": answers == baseline and reexecutions >= 1,
    }


def _ingest_kill_cell(crash_point, seed, tmp):
    from repro.core.crash_harness import run_crash_cell

    outcome = run_crash_cell(
        Path(tmp) / f"crash-{crash_point}-{seed}",
        crash_point=crash_point,
        crash_hit=2,
        seed=seed,
        count=128,
        length=24,
        batch_rows=16,
        checkpoint_every=2,
    )
    return {
        "scenario": "ingest-kill",
        "crash_point": crash_point,
        "killed": outcome.killed,
        "acked": outcome.acked_rows,
        "recovered": outcome.recovered_rows,
        "ok": outcome.ok and outcome.killed,
        "failures": outcome.failures,
    }


def _live_query_cell(name, queries, seed, tmp):
    from repro.core.growable import GrowableBackend
    from repro.workloads.generators import random_walk

    matrix = random_walk(160, 32, seed=seed)
    backend = GrowableBackend(
        Path(tmp) / f"live-{name.replace(':', '_')}-{seed}",
        length=32,
        create=True,
    )
    backend.extend(matrix[:120])
    store = SeriesStore(Dataset.from_file(backend.root))
    live = _build(name, store.snapshot())
    frozen = _build(
        name, SeriesStore(Dataset(values=matrix[:120].copy(), name="frozen"))
    )
    identical = True
    for query in queries:
        store.extend(matrix[store.count : store.count + 8])  # mid-flight ingest
        if _answers(live, [query]) != _answers(frozen, [query]):
            identical = False
    backend.close()
    return {
        "scenario": "live-query",
        "identical": identical,
        "ok": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", default="7,23", help="comma-separated fault-plan seeds"
    )
    parser.add_argument("--count", type=int, default=400, help="dataset rows")
    parser.add_argument("--length", type=int, default=32, help="series length")
    parser.add_argument(
        "--json", default="BENCH_chaos_matrix.json", help="output artifact path"
    )
    args = parser.parse_args(argv)
    seeds = [int(s) for s in str(args.seeds).split(",") if s.strip()]

    dataset = random_walk_dataset(args.count, args.length, seed=5, name="chaos-matrix")
    queries = _queries(args.length)
    started = time.time()
    rows = []
    failures = 0

    with tempfile.TemporaryDirectory(prefix="chaos-matrix-") as tmp:
        mmap_file = Path(tmp) / "matrix.npy"
        dataset.to_mmap(mmap_file)  # writes the .crc sidecar too

        for name in METHODS:
            baseline = _answers(_build(name, SeriesStore(dataset)), queries)
            for seed in seeds:
                cell = _transient_cell(name, dataset, queries, baseline, seed)
                cell.update(method=name, seed=seed)
                rows.append(cell)
                failures += 0 if cell["ok"] else 1

        for seed in seeds:
            cell = _corrupt_cell("flat", mmap_file, queries, seed)
            cell.update(method="flat", seed=seed)
            rows.append(cell)
            failures += 0 if cell["ok"] else 1

        cell = _shard_loss_cell(dataset, queries, None)
        cell.update(method="sharded:flat", seed=None)
        rows.append(cell)
        failures += 0 if cell["ok"] else 1

        for seed in seeds:
            cell = _kill_worker_cell(dataset, queries, seed)
            cell.update(method="sharded:flat", seed=seed)
            rows.append(cell)
            failures += 0 if cell["ok"] else 1

        for crash_point in ("kill_after_wal_write", "kill_mid_checkpoint"):
            for seed in seeds:
                cell = _ingest_kill_cell(crash_point, seed, tmp)
                cell.update(method="ingest", seed=seed)
                rows.append(cell)
                failures += 0 if cell["ok"] else 1

        for name in ("flat", "sharded:flat"):
            for seed in seeds:
                cell = _live_query_cell(name, queries, seed, tmp)
                cell.update(method=name, seed=seed)
                rows.append(cell)
                failures += 0 if cell["ok"] else 1

    report = {
        "benchmark": "chaos_matrix",
        "seeds": seeds,
        "dataset": {"count": args.count, "length": args.length},
        "elapsed_s": round(time.time() - started, 2),
        "cells": rows,
        "failures": failures,
    }
    Path(args.json).write_text(json.dumps(report, indent=2))

    for row in rows:
        status = "PASS" if row["ok"] else "FAIL"
        extra = {
            k: v
            for k, v in row.items()
            if k not in ("ok", "scenario", "method", "seed", "plan")
        }
        print(f"[{status}] {row['scenario']:>10} {row['method']:>14} "
              f"seed={row['seed']} {extra}")
    print(f"wrote {args.json} ({len(rows)} cells, {failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
