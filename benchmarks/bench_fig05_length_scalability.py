"""Figure 5 — total time vs series length (Idx+Exact100 and Idx+Exact10K).

The paper fixes the dataset at 100GB, sweeps the series length from 128 to
16384 (keeping 16 summary segments), and reports the total time to index and
answer 100 (or an extrapolated 10,000) exact queries.  The headline shape is
that ADS+ and VA+file get *cheaper* with longer series (fewer, larger skips)
while the other methods stay flat.
"""

from __future__ import annotations

from repro.evaluation import HDD, render_series

from .conftest import BEST_METHODS, LENGTH_SWEEP, dataset_for, run_cell, summarize, workload_for


def test_fig05_length_scalability(benchmark):
    totals_100 = {m: [] for m in BEST_METHODS}
    totals_10k = {m: [] for m in BEST_METHODS}
    random_io = {m: {} for m in BEST_METHODS}
    for length in LENGTH_SWEEP:
        dataset = dataset_for(100, length=length)
        workload = workload_for(length=length, count=5)
        for method in BEST_METHODS:
            result = run_cell(dataset, workload, method, platform=HDD)
            totals_100[method].append((length, round(result.total_seconds, 3)))
            totals_10k[method].append(
                (length, round(result.extrapolated_total_seconds(10_000), 1))
            )
            random_io[method][length] = result.random_accesses

    summarize(
        "Figure 5a - Idx+Exact100 total time vs series length",
        render_series(totals_100, x_label="length"),
    )
    summarize(
        "Figure 5b - Idx+Exact10K total time vs series length (extrapolated)",
        render_series(totals_10k, x_label="length"),
    )
    # Shape check: the skip-sequential methods' random I/O falls with length.
    assert random_io["va+file"][LENGTH_SWEEP[-1]] <= random_io["va+file"][LENGTH_SWEEP[0]]

    dataset = dataset_for(100, length=LENGTH_SWEEP[0])
    workload = workload_for(length=LENGTH_SWEEP[0], count=5)

    def one_cell():
        return run_cell(dataset, workload, "dstree", platform=HDD).total_seconds

    benchmark.pedantic(one_cell, rounds=1, iterations=1)
