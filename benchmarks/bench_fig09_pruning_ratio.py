"""Figure 9 — pruning ratio per method across workloads.

The paper measures the pruning ratio (fraction of raw series *not* examined)
of ADS+, iSAX2+, DSTree, SFA and VA+file under the synthetic random and
controlled workloads and under controlled workloads on the four real datasets.
Headline shape: pruning is highest on the random synthetic workload, the
controlled workloads are more varied (they contain hard queries), ADS+ and
VA+file prune the most, SFA the least (because of its very large leaves), and
the hard real datasets (Deep1B analogue) prune poorly for everyone.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import HDD, render_table

from .conftest import run_cell, summarize
from repro.workloads import (
    random_walk_dataset,
    real_ctrl_workload,
    real_like_dataset,
    synth_ctrl_workload,
    synth_rand_workload,
)

PRUNING_METHODS = ("ads+", "isax2+", "dstree", "sfa-trie", "va+file")
SERIES_COUNT = 3_000
QUERIES = 8


def _workloads():
    synth = random_walk_dataset(SERIES_COUNT, 128, seed=31, name="synthetic-100GB")
    yield synth, synth_rand_workload(128, count=QUERIES, seed=32)
    yield synth, synth_ctrl_workload(synth, count=QUERIES, seed=33)
    for name in ("sald", "seismic", "astro", "deep1b"):
        dataset = real_like_dataset(name, SERIES_COUNT, seed=34)
        yield dataset, real_ctrl_workload(dataset, count=QUERIES, seed=35)


def test_fig09_pruning_ratio(benchmark):
    rows = []
    pruning = {}
    for dataset, workload in _workloads():
        for method in PRUNING_METHODS:
            result = run_cell(dataset, workload, method, platform=HDD)
            per_query = [s.pruning_ratio for s in result.query_stats]
            rows.append(
                {
                    "workload": workload.name,
                    "dataset": dataset.name,
                    "method": method,
                    "pruning_mean": round(float(np.mean(per_query)), 3),
                    "pruning_min": round(float(np.min(per_query)), 3),
                    "pruning_max": round(float(np.max(per_query)), 3),
                }
            )
            pruning[(workload.name, method)] = float(np.mean(per_query))
    summarize("Figure 9 - pruning ratio per method and workload", render_table(rows))

    # Shape checks mirroring the paper:
    # (1) the skip-sequential methods with full-resolution summaries (ADS+,
    #     VA+file) achieve the best pruning on the synthetic workloads;
    for method in ("ads+", "va+file"):
        assert pruning[("synth-rand", method)] >= pruning[("synth-rand", "sfa-trie")]
    # (2) SFA's very large leaves give it the lowest pruning of the indexes;
    assert pruning[("synth-rand", "sfa-trie")] == min(
        pruning[("synth-rand", m)] for m in PRUNING_METHODS
    )
    # (3) the hard embedding-like dataset prunes worse than the smooth one.
    assert pruning[("deep1b-ctrl", "dstree")] <= pruning[("sald-ctrl", "dstree")] + 0.05

    dataset = random_walk_dataset(SERIES_COUNT, 128, seed=31)
    workload = synth_rand_workload(128, count=QUERIES, seed=32)

    def one_cell():
        return run_cell(dataset, workload, "va+file", platform=HDD).pruning_ratio

    benchmark.pedantic(one_cell, rounds=1, iterations=1)
