"""Figure 8 — index footprint and tightness of the lower bound (TLB).

Panels (a)-(e) report total nodes, leaf nodes, memory size, disk size, and the
leaf fill-factor distribution across dataset sizes; panel (f) reports the TLB
of each method for increasing series lengths.  The paper's observations: the
SAX-based indexes have by far the most nodes, SFA has very few (huge leaves),
DSTree has the highest and steadiest fill factor, and the TLB of ADS+/VA+file
approaches 1 as series get longer.
"""

from __future__ import annotations

import numpy as np

from repro import SeriesStore, create_method
from repro.evaluation import render_table, tlb_for_method
from repro.evaluation.measures import footprint_report

from .conftest import (
    METHOD_PARAMS,
    SIZE_SWEEP,
    dataset_for,
    summarize,
    workload_for,
)

FOOTPRINT_METHODS = ("ads+", "dstree", "isax2+", "sfa-trie", "va+file")
TLB_METHODS = ("ads+", "dstree", "isax2+", "sfa-trie", "va+file")
TLB_LENGTHS = (64, 128, 256)


def _build(method, dataset):
    store = SeriesStore(dataset)
    instance = create_method(method, store, **METHOD_PARAMS.get(method, {}))
    instance.build()
    return instance


def test_fig08_footprint(benchmark):
    sizes = list(SIZE_SWEEP)[:3]
    rows = []
    fill_rows = []
    for paper_gb in sizes:
        dataset = dataset_for(paper_gb)
        for method in FOOTPRINT_METHODS:
            instance = _build(method, dataset)
            report = footprint_report(instance.index_stats)
            rows.append(
                {
                    "dataset_gb": paper_gb,
                    "method": method,
                    "nodes": report.total_nodes,
                    "leaves": report.leaf_nodes,
                    "memory_kb": round(report.memory_bytes / 1024, 1),
                    "disk_kb": round(report.disk_bytes / 1024, 1),
                }
            )
            factors = report.fill_factor_values
            if factors:
                fill_rows.append(
                    {
                        "dataset_gb": paper_gb,
                        "method": method,
                        "fill_median_pct": round(100 * report.fill_factor_median, 1),
                        "fill_p10_pct": round(100 * float(np.percentile(factors, 10)), 1),
                        "fill_p90_pct": round(100 * float(np.percentile(factors, 90)), 1),
                        "max_leaf_depth": report.leaf_depth_max,
                    }
                )
    summarize("Figure 8a-d - nodes, leaves, memory and disk size", render_table(rows))
    summarize("Figure 8e - leaf fill factor distribution", render_table(fill_rows))

    # Shape checks: SAX-based indexes have the most nodes; SFA the fewest
    # (its leaves are an order of magnitude larger).
    largest = sizes[-1]
    by_method = {
        row["method"]: row["nodes"] for row in rows if row["dataset_gb"] == largest
    }
    assert by_method["sfa-trie"] <= by_method["isax2+"]
    # DSTree's fill factor is the steadiest/highest of the tree indexes.
    dstree_fill = [r["fill_median_pct"] for r in fill_rows if r["method"] == "dstree"]
    isax_fill = [r["fill_median_pct"] for r in fill_rows if r["method"] == "isax2+"]
    assert np.mean(dstree_fill) >= np.mean(isax_fill) * 0.5

    dataset = dataset_for(sizes[0])

    def build_once():
        return _build("dstree", dataset).index_stats.total_nodes

    benchmark.pedantic(build_once, rounds=1, iterations=1)


def test_fig08_tlb(benchmark):
    rows = []
    tlb_by_method = {}
    for length in TLB_LENGTHS:
        dataset = dataset_for(50, length=length)
        workload = workload_for(length=length, count=3)
        for method in TLB_METHODS:
            instance = _build(method, dataset)
            tlb = tlb_for_method(instance, workload, max_leaves=20)
            rows.append({"length": length, "method": method, "tlb": round(tlb, 4)})
            tlb_by_method.setdefault(method, {})[length] = tlb
    summarize("Figure 8f - tightness of the lower bound vs series length", render_table(rows))

    # Every TLB is a valid ratio; the DFT-based summaries (ADS+/VA+ use 16
    # coefficients over smooth random walks) should achieve a high TLB.
    for method, values in tlb_by_method.items():
        for tlb in values.values():
            assert 0.0 <= tlb <= 1.0 + 1e-6

    dataset = dataset_for(50, length=TLB_LENGTHS[0])
    workload = workload_for(length=TLB_LENGTHS[0], count=3)

    def tlb_once():
        return tlb_for_method(_build("va+file", dataset), workload, max_leaves=20)

    benchmark.pedantic(tlb_once, rounds=1, iterations=1)
