"""Figure 2 — leaf-size parametrization.

The paper sweeps the maximum leaf capacity of ADS+, DSTree, iSAX2+, M-tree,
R*-tree and the SFA trie and reports the indexing vs querying time split for
each setting, normalized by the largest total.  This benchmark regenerates the
same rows at reduced scale, plus the paper's SFA alphabet/binning sweep.
"""

from __future__ import annotations

import pytest

from repro.evaluation import HDD, render_table, run_experiment

from .conftest import dataset_for, summarize, workload_for

# Leaf-size grids, scaled down from the paper's (5K-150K for the big indexes,
# 1-200 for the memory-bound trees, 200K-1.5M for SFA).
LEAF_SWEEPS = {
    "ads+": (25, 50, 100, 200),
    "dstree": (25, 50, 100, 200),
    "isax2+": (25, 50, 100, 200),
    "m-tree": (4, 8, 16, 32),
    "r*-tree": (10, 25, 50, 100),
    "sfa-trie": (100, 250, 500, 1000),
}
PARAM_NAME = {"m-tree": "node_capacity", "r*-tree": "leaf_capacity"}


def _leaf_param(method: str, value: int) -> dict:
    return {PARAM_NAME.get(method, "leaf_capacity"): value}


@pytest.mark.parametrize("method", sorted(LEAF_SWEEPS))
def test_fig02_leaf_size_sweep(benchmark, method):
    """Indexing vs querying time across leaf sizes (one sub-figure per method)."""
    # M-tree and R*-tree are parametrized on a smaller dataset in the paper
    # (50GB instead of 100GB) because they do not scale; mirror that here.
    paper_gb = 50 if method in ("m-tree", "r*-tree") else 100
    dataset = dataset_for(paper_gb)
    workload = workload_for(count=5)

    rows = []
    results = {}
    for leaf_size in LEAF_SWEEPS[method]:
        result = run_experiment(
            dataset,
            workload,
            method,
            platform=HDD,
            method_params=_leaf_param(method, leaf_size),
        )
        results[leaf_size] = result
        rows.append(
            {
                "leaf_size": leaf_size,
                "index_s": round(result.build_seconds, 3),
                "query_s": round(result.query_seconds, 3),
                "total_s": round(result.total_seconds, 3),
            }
        )
    largest_total = max(row["total_s"] for row in rows) or 1.0
    for row in rows:
        row["normalized"] = round(row["total_s"] / largest_total, 3)
    summarize(
        f"Figure 2 ({method}) - leaf size parametrization, dataset={paper_gb}GB-equivalent",
        render_table(rows),
    )

    # Benchmark the query phase at the best leaf size found.
    best = min(results.values(), key=lambda r: r.total_seconds)
    store_params = _leaf_param(method, [k for k, v in results.items() if v is best][0])

    def query_once():
        return run_experiment(
            dataset, workload, method, platform=HDD, method_params=store_params
        ).query_seconds

    benchmark.pedantic(query_once, rounds=1, iterations=1)


def test_fig02_sfa_alphabet_and_binning(benchmark):
    """The paper additionally tunes SFA's alphabet size and binning method."""
    dataset = dataset_for(50)
    workload = workload_for(count=5)
    rows = []
    for binning in ("equi-depth", "equi-width"):
        for alphabet in (4, 8, 16):
            result = run_experiment(
                dataset,
                workload,
                "sfa-trie",
                platform=HDD,
                method_params={
                    "alphabet_size": alphabet,
                    "binning": binning,
                    "leaf_capacity": 250,
                },
            )
            rows.append(
                {
                    "binning": binning,
                    "alphabet": alphabet,
                    "total_s": round(result.total_seconds, 3),
                    "pruning": round(result.pruning_ratio, 3),
                }
            )
    summarize("Figure 2 (SFA tuning) - alphabet size and binning", render_table(rows))

    def best_setting_run():
        return run_experiment(
            dataset,
            workload,
            "sfa-trie",
            platform=HDD,
            method_params={"alphabet_size": 8, "binning": "equi-depth", "leaf_capacity": 250},
        ).total_seconds

    benchmark.pedantic(best_setting_run, rounds=1, iterations=1)
