"""Figure 4 — sequential and random disk accesses vs dataset size and length.

The paper counts, for the best six methods, the sequential and random disk
accesses incurred by 100 exact queries while sweeping the dataset size (at
fixed length 256) and the series length (at fixed 100GB).  This benchmark
regenerates the four panels as tables of access counts.
"""

from __future__ import annotations


from repro.evaluation import HDD, render_series

from .conftest import (
    BEST_METHODS,
    LENGTH_SWEEP,
    SIZE_SWEEP,
    dataset_for,
    run_cell,
    summarize,
    workload_for,
)


def _series_of(counts: dict) -> dict:
    return {method: sorted(points.items()) for method, points in counts.items()}


def test_fig04_accesses_vs_dataset_size(benchmark):
    workload = workload_for(count=5)
    sequential = {m: {} for m in BEST_METHODS}
    random_io = {m: {} for m in BEST_METHODS}
    for paper_gb in SIZE_SWEEP:
        dataset = dataset_for(paper_gb)
        for method in BEST_METHODS:
            result = run_cell(dataset, workload, method, platform=HDD)
            sequential[method][paper_gb] = sum(
                s.series_examined for s in result.query_stats
            )
            random_io[method][paper_gb] = result.random_accesses
    summarize(
        "Figure 4a - series read sequentially vs dataset size (5 queries)",
        render_series(_series_of(sequential), x_label="dataset_gb"),
    )
    summarize(
        "Figure 4c - random accesses vs dataset size (5 queries)",
        render_series(_series_of(random_io), x_label="dataset_gb"),
    )
    # Shape checks mirroring the paper's observations: the serial scan reads
    # the most raw data, and the skip-sequential methods perform the most
    # random accesses (ADS+ ahead of the clustered-leaf indexes).
    largest = max(SIZE_SWEEP)
    assert sequential["ucr-suite"][largest] == max(
        series[largest] for series in sequential.values()
    )
    assert random_io["ads+"][largest] >= random_io["dstree"][largest]
    assert random_io["va+file"][largest] >= random_io["dstree"][largest]

    dataset = dataset_for(min(SIZE_SWEEP))

    def one_method():
        return run_cell(dataset, workload, "ads+", platform=HDD).random_accesses

    benchmark.pedantic(one_method, rounds=1, iterations=1)


def test_fig04_accesses_vs_series_length(benchmark):
    sequential = {m: {} for m in BEST_METHODS}
    random_io = {m: {} for m in BEST_METHODS}
    for length in LENGTH_SWEEP:
        dataset = dataset_for(100, length=length)
        workload = workload_for(length=length, count=5)
        for method in BEST_METHODS:
            result = run_cell(dataset, workload, method, platform=HDD)
            sequential[method][length] = sum(
                s.series_examined for s in result.query_stats
            )
            random_io[method][length] = result.random_accesses
    summarize(
        "Figure 4b - series read sequentially vs series length (5 queries)",
        render_series(_series_of(sequential), x_label="length"),
    )
    summarize(
        "Figure 4d - random accesses vs series length (5 queries)",
        render_series(_series_of(random_io), x_label="length"),
    )
    # Paper observation: longer series mean fewer skips for the skip-sequential
    # methods (each skip covers more bytes), so their random I/O falls.
    assert random_io["ads+"][LENGTH_SWEEP[-1]] <= random_io["ads+"][LENGTH_SWEEP[0]]

    dataset = dataset_for(100, length=LENGTH_SWEEP[0])
    workload = workload_for(length=LENGTH_SWEEP[0], count=5)

    def one_method():
        return run_cell(dataset, workload, "va+file", platform=HDD).random_accesses

    benchmark.pedantic(one_method, rounds=1, iterations=1)
