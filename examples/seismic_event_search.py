"""Domain example: finding recordings similar to a seismic event template.

The paper's Seismic dataset contains instrument recordings from thousands of
stations; a typical analysis task is to find past recordings whose shape is
closest to a newly observed event (the "whole matching 1-NN" use case the paper
motivates).  This example uses the library's seismic analogue generator,
compares an index against the optimized serial scan, and shows how query
difficulty (amount of noise on the template) changes the picture — the paper's
"easy vs hard queries" observation.

Run with::

    python examples/seismic_event_search.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SeriesStore, create_method, znormalize
from repro.core.queries import KnnQuery
from repro.workloads import seismic_like


def timed_search(method, query: KnnQuery):
    start = time.perf_counter()
    result = method.knn_exact(query)
    elapsed = time.perf_counter() - start
    return result, elapsed


def main() -> None:
    # A scaled-down stand-in for the paper's 100M-series seismic archive.
    dataset = seismic_like(count=8_000, length=256, seed=3)
    print(f"seismic analogue: {dataset.count} recordings of {dataset.length} samples")

    # Build the two contenders the paper recommends for this regime.
    dstree = create_method("dstree", SeriesStore(dataset), leaf_capacity=100)
    dstree.build()
    scan = create_method("ucr-suite", SeriesStore(dataset))
    scan.build()

    rng = np.random.default_rng(11)
    template_id = int(rng.integers(dataset.count))
    template = dataset.values[template_id].astype(np.float64)

    print("\nquery difficulty sweep (noise added to a stored event template):")
    print(f"{'noise':>6} | {'dstree time':>12} | {'scan time':>10} | "
          f"{'pruning':>8} | {'1-NN distance':>13}")
    for noise in (0.0, 0.25, 0.5, 1.0, 2.0):
        noisy = znormalize(template + noise * rng.standard_normal(dataset.length))
        query = KnnQuery(series=noisy, k=1)

        tree_result, tree_time = timed_search(dstree, query)
        scan_result, scan_time = timed_search(scan, query)
        assert abs(tree_result.nearest.distance - scan_result.nearest.distance) < 1e-3

        print(f"{noise:6.2f} | {tree_time * 1e3:10.1f}ms | {scan_time * 1e3:8.1f}ms | "
              f"{tree_result.stats.pruning_ratio:8.3f} | "
              f"{tree_result.nearest.distance:13.4f}")

    print("\nAs noise grows the query gets harder: pruning drops and the index's")
    print("advantage over the optimized serial scan shrinks - the same effect the")
    print("paper reports for its hard controlled-workload queries (Table 2).")


if __name__ == "__main__":
    main()
