"""Live collections: durable ingest, snapshot queries, crash recovery.

Run with::

    python examples/live_ingest.py

The walkthrough covers the growable backend end to end:

1. **Create** a growable store (a directory: segment files + a write-ahead
   log) and ingest rows in acked batches — ``extend`` returns only after the
   batch is fsynced to the WAL, so an acked batch survives any process kill.
2. **Checkpoint**: seal the WAL tail into a CRC-sidecar'd segment file; the
   sequence is crash-consistent at every step (replay is idempotent).
3. **Query while ingesting**: a built engine keeps answering during
   ``extend`` — new rows become searchable immediately, while snapshots pin
   a watermark and answer byte-identically to a frozen prefix.
4. **Crash and recover**: reopen after an unclean shutdown; the
   ``RecoveryReport`` shows rows restored from segments and the log, torn
   bytes truncated, debris swept — and every acked row back, bit-exact.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Dataset, SeriesStore, SimilaritySearchEngine
from repro.core.growable import GrowableBackend


def main() -> None:
    rng = np.random.default_rng(7)
    length = 64

    def batch(rows: int) -> np.ndarray:
        return np.cumsum(
            rng.standard_normal((rows, length)), axis=1, dtype=np.float64
        ).astype(np.float32)

    with tempfile.TemporaryDirectory(prefix="live-ingest-") as tmp:
        root = Path(tmp) / "collection.store"

        # 1. Create the store and durably ingest a first collection.
        dataset = Dataset.from_array(batch(500), name="live").to_growable(root)
        engine = SimilaritySearchEngine(dataset)
        engine.build("dstree", leaf_capacity=64)
        print(f"built over {engine.store.count} rows at {root}")

        # 2. Query while ingesting: each extend is acked (WAL fsync) and
        #    bulk-inserted into the built tree before the call returns.
        probe = batch(1)[0]
        for _ in range(4):
            engine.extend(batch(100))
        result = engine.search(probe, k=3)
        print(
            f"count={engine.store.count}  3-NN after live extends: "
            f"{[n.position for n in result.neighbors]}"
        )

        # 3. Snapshots pin the watermark: queries against one are identical
        #    to a frozen store of that prefix, however much lands meanwhile.
        snapshot = engine.store.snapshot()
        engine.extend(batch(100))
        frozen = SeriesStore(
            Dataset.from_array(
                np.asarray(snapshot.dataset.values).copy(), name="frozen"
            )
        )
        print(
            f"snapshot pinned at {snapshot.count} rows "
            f"(store now {engine.store.count}); frozen twin agrees: "
            f"{np.array_equal(snapshot.read_contiguous(0, snapshot.count), frozen.read_contiguous(0, frozen.count))}"
        )

        # 4. Seal the tail, then simulate an unclean shutdown: more acked
        #    rows in the WAL, no checkpoint, no close.
        engine.checkpoint()
        backend = dataset.backend
        backend.extend(batch(50))
        backend.close()  # releases the handle; the WAL still holds the tail

        reopened = GrowableBackend(root)
        report = reopened.recovery
        print(
            f"reopened: {report.sealed_rows} rows from segments + "
            f"{report.replayed_rows} replayed from the WAL "
            f"(clean={report.clean})"
        )
        assert reopened.count == 1050
        print(f"verified {reopened.verify_segments()} sealed rows against CRCs")
        reopened.close()


if __name__ == "__main__":
    main()
