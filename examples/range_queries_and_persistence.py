"""Range queries and index persistence.

Two workflows a production user of the library needs beyond k-NN search:

* *r-range queries* — "give me every series within distance r of this one"
  (Definition 2 in the paper), answered exactly through the same lower-bound
  pruning machinery the k-NN algorithms use;
* *index persistence* — build once, save to disk, reload in a later session,
  with a dataset fingerprint guarding against loading an index against the
  wrong data.

Run with::

    python examples/range_queries_and_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import KnnQuery, SeriesStore, create_method, load_method, save_method
from repro.core.queries import RangeQuery
from repro.workloads import astro_like


def main() -> None:
    # A light-curve-like collection (smooth, highly summarizable).
    dataset = astro_like(count=5_000, length=256, seed=9)
    print(f"dataset: {dataset.count} light curves of length {dataset.length}")

    index = create_method("dstree", SeriesStore(dataset), leaf_capacity=100)
    index.build()

    # -- range query ---------------------------------------------------------
    template = dataset.values[123].astype(np.float64)
    # Radius chosen from the distance to the 2nd nearest neighbor so the
    # answer set is small but non-trivial.
    nearest = index.knn_exact(KnnQuery(series=template, k=2)).distances()[1]
    radius = nearest * 1.5
    result = index.range_exact(RangeQuery(series=template, radius=radius))
    print(f"\nrange query around series #123 with radius {radius:.3f}:")
    print(f"  {len(result)} series within range "
          f"(examined {result.stats.series_examined} of {dataset.count})")
    for neighbor in result.neighbors[:5]:
        print(f"  series #{neighbor.position:6d} at distance {neighbor.distance:.4f}")

    # -- persistence ----------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "astro.dstree.idx"
        envelope = save_method(index, path)
        print(f"\nsaved index: {envelope.summary()}")

        reloaded = load_method(path, dataset)
        check = reloaded.range_exact(RangeQuery(series=template, radius=radius))
        assert set(check.positions()) == set(result.positions())
        print(f"reloaded index returns the same {len(check)} answers")


if __name__ == "__main__":
    main()
