"""How the storage device changes the winner: HDD vs SSD cost models.

One of the paper's central findings is that the *same* access pattern is priced
very differently by different devices: ADS+ and VA+file perform many random
accesses (skips), which is a liability on the high-sequential-throughput HDD
RAID but an asset on the SSD box.  This example reproduces that flip at small
scale by pricing identical runs with both hardware models.

Run with::

    python examples/hardware_tradeoff.py
"""

from __future__ import annotations

from repro.evaluation import HDD, SSD, render_table, run_experiment
from repro.workloads import random_walk_dataset, synth_rand_workload

METHODS = {
    "ads+": {"leaf_capacity": 100},
    "dstree": {"leaf_capacity": 100},
    "va+file": {},
    "ucr-suite": {},
}


def main() -> None:
    dataset = random_walk_dataset(6_000, 128, seed=5, name="hardware-tradeoff")
    workload = synth_rand_workload(128, count=15, seed=6)

    rows = []
    for name, params in METHODS.items():
        # Run once; the access pattern is hardware independent, only the price
        # of the accesses changes.
        result = run_experiment(dataset, workload, name, platform=HDD, method_params=params)
        hdd_io = result.query_io_seconds
        ssd_io = sum(SSD.io_seconds_for(stats) for stats in result.query_stats)
        rows.append(
            {
                "method": name,
                "random_io": result.random_accesses,
                "sequential_pages": result.sequential_pages,
                "io_time_hdd_s": round(hdd_io, 4),
                "io_time_ssd_s": round(ssd_io, 4),
                "winner_on": "ssd" if ssd_io < hdd_io else "hdd",
            }
        )

    print(render_table(rows, title="Query I/O cost under the two hardware models"))
    print(
        "\nSkip-sequential methods (ads+, va+file) pay for every skip on the HDD\n"
        "model but much less on the SSD model, while the full sequential scan\n"
        "(ucr-suite) is priced almost the same everywhere - the effect behind the\n"
        "paper's Figures 6 and 7."
    )


if __name__ == "__main__":
    main()
