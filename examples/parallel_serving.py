"""Parallel serving: saturate every core with sharded indexes and batch workers.

Run with::

    python examples/parallel_serving.py

The example walks the two parallelism axes of the execution engine and shows
that they change *throughput only* — the answers stay byte-identical:

1. **Intra-query parallelism** — ``engine.build("sharded:isax2+", shards=S,
   workers=W)`` partitions the collection into ``S`` contiguous shards, bulk
   builds one iSAX2+ tree per shard concurrently, and answers each query by
   searching all shards on a thread pool.  Shards share a best-so-far radius,
   so a tight answer found in one shard prunes the others.
2. **Inter-query parallelism** — ``engine.search_batch(queries, workers=W)``
   splits a query batch into contiguous chunks served concurrently, each with
   worker-local access accounting.

Worker counts default to ``REPRO_WORKERS`` or the CPU count; on a single-core
machine everything still runs (and stays correct) on the identical code path.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import Dataset, SimilaritySearchEngine
from repro.workloads import random_walk

WORKERS = int(os.environ.get("REPRO_WORKERS", os.cpu_count() or 1))


def main() -> None:
    # 1. A mid-sized collection: 50,000 z-normalized random walks, length 128.
    series = random_walk(count=50_000, length=128, seed=42)
    dataset = Dataset(values=series, name="parallel-serving", normalized=True)
    rng = np.random.default_rng(7)
    queries = rng.standard_normal((64, 128)).cumsum(axis=1)
    print(
        f"dataset: {dataset.count} series x {dataset.length} "
        f"({dataset.nbytes / 1e6:.1f} MB), {WORKERS} worker(s)"
    )

    # 2. The sequential baseline.
    baseline = SimilaritySearchEngine(dataset)
    baseline.build("isax2+", leaf_capacity=1000)
    start = time.perf_counter()
    expected = baseline.search_batch(queries, k=10, normalize=True)
    base_s = time.perf_counter() - start
    print(f"isax2+          : {len(queries) / base_s:8.1f} queries/s")

    # 3. Partition-parallel: shard the same method across the cores.  The
    #    shards bulk-build concurrently, and every query fans out across them.
    engine = SimilaritySearchEngine(dataset)
    build_stats = engine.build(
        "sharded:isax2+", shards=max(2, WORKERS), workers=WORKERS, leaf_capacity=1000
    )
    print(
        f"built {build_stats.method}: {build_stats.leaf_nodes} leaves across "
        f"{engine.method.shard_count} shards in {build_stats.build_cpu_seconds:.2f}s"
    )
    start = time.perf_counter()
    sharded = engine.search_batch(queries, k=10, normalize=True)
    sharded_s = time.perf_counter() - start
    print(f"sharded:isax2+  : {len(queries) / sharded_s:8.1f} queries/s")

    # 4. Stack inter-query parallelism on top: chunked batch dispatch.
    start = time.perf_counter()
    chunked = engine.search_batch(queries, k=10, normalize=True, workers=WORKERS)
    chunked_s = time.perf_counter() - start
    print(f"  + batch chunks: {len(queries) / chunked_s:8.1f} queries/s")

    # 5. Parallelism must never change answers: byte-identical across paths.
    for a, b, c in zip(expected, sharded, chunked):
        assert a.positions() == b.positions() == c.positions()
        assert a.distances() == b.distances() == c.distances()
    print("answers: sharded == chunked == sequential (byte-identical)")

    # 6. Accounting still adds up: per-query charges sum to the store totals.
    total_examined = sum(r.stats.series_examined for r in sharded)
    print(
        f"accounting: {total_examined} series examined across the batch "
        f"({total_examined / (len(queries) * dataset.count):.1%} of brute force)"
    )


if __name__ == "__main__":
    main()
