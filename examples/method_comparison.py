"""Compare the ten methods on one dataset, the way the paper's Table 2 does.

Builds every method over the same random-walk collection, runs a controlled
query workload, and prints per-method build time, query time (CPU + simulated
I/O under the HDD and SSD cost models), pruning ratio and disk accesses — the
measures the paper uses to rank methods per scenario.

Run with::

    python examples/method_comparison.py
"""

from __future__ import annotations

from repro.evaluation import HDD, SSD, best_method_per_scenario, render_table, run_experiment
from repro.workloads import random_walk_dataset, synth_ctrl_workload

# Method parameters scaled to the example's dataset size (the paper tunes leaf
# sizes per dataset; see benchmarks/bench_fig02_leaf_size.py for that sweep).
METHODS = {
    "ads+": {"leaf_capacity": 100},
    "dstree": {"leaf_capacity": 100},
    "isax2+": {"leaf_capacity": 100},
    "sfa-trie": {"leaf_capacity": 500},
    "va+file": {},
    "m-tree": {"node_capacity": 16},
    "r*-tree": {"leaf_capacity": 50},
    "stepwise": {},
    "ucr-suite": {},
    "mass": {},
}


def main() -> None:
    dataset = random_walk_dataset(4_000, 128, seed=1, name="comparison")
    workload = synth_ctrl_workload(dataset, count=20, seed=2)
    print(f"dataset: {dataset.count} x {dataset.length}, workload: {len(workload)} queries\n")

    rows = []
    results = {}
    for name, params in METHODS.items():
        result = run_experiment(dataset, workload, name, platform=HDD, method_params=params)
        results[name] = result
        ssd_io = sum(SSD.io_seconds_for(s) for s in result.query_stats)
        rows.append(
            {
                "method": name,
                "build_s": round(result.build_seconds, 3),
                "query_cpu_s": round(result.query_cpu_seconds, 3),
                "query_io_hdd_s": round(result.query_io_seconds, 4),
                "query_io_ssd_s": round(ssd_io, 4),
                "pruning": round(result.pruning_ratio, 3),
                "random_io": result.random_accesses,
            }
        )

    print(render_table(rows, title="Per-method comparison (controlled workload)"))

    winners = best_method_per_scenario(results)
    print("\nBest method per scenario (cf. paper Table 2):")
    for scenario, winner in winners.items():
        print(f"  {scenario:>14}: {winner}")


if __name__ == "__main__":
    main()
