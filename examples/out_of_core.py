"""Out-of-core search: stream a dataset to disk, serve it memory-mapped.

Run with::

    python examples/out_of_core.py

The walkthrough mirrors the paper's actual setting — disk-resident raw data —
end to end:

1. **Stream** a random-walk collection to a ``.npy`` file chunk by chunk
   (`random_walk_to_file`); only one chunk is ever in memory, so the same
   call writes collections far larger than RAM.
2. **Open lazily** with ``Dataset.from_file``: ``values`` is a read-only
   memory-mapped view, and every store built on the dataset serves reads
   straight from the mapping (the ``mmap`` backend).
3. **Build and query** any registered method — including the parallel
   ``sharded:*`` wrapper — completely unmodified: the backend seam sits under
   `SeriesStore`, so method code cannot tell the backends apart.
4. **Verify equivalence**: answers and access counters are identical to the
   in-memory backend (``backend="memory"`` materializes the same file into
   RAM for comparison).
5. **Persist** the built index: the envelope records the backend and source
   path, so ``load_method(path)`` — with *no dataset argument* — reopens the
   mapping and serves immediately.
6. **Compress**: ``Dataset.to_compressed`` streams the collection into the
   quantized-block ``.rcz`` format (int8 + zlib here, ~4.5x smaller), and
   scans over it switch to the two-phase pruned path — quantized lower bounds
   skip whole tiles, full precision is fetched only for survivors — with
   answers byte-identical to a memory backend over the same stored values and
   ``physical_bytes_read`` a fraction of the logical ``bytes_read``.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import SeriesStore, SimilaritySearchEngine, load_method, save_method
from repro.evaluation import measure_platform
from repro.workloads import random_walk_to_file, synth_rand_workload


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-outofcore-") as tmp:
        data_path = Path(tmp) / "walks.npy"

        # 1. Stream the collection to disk (bounded memory, any size).
        start = time.perf_counter()
        dataset = random_walk_to_file(
            data_path, count=50_000, length=128, seed=7, chunk_size=8_192
        )
        size_mb = os.path.getsize(data_path) / 2**20
        print(
            f"streamed {dataset.count} x {dataset.length} series "
            f"({size_mb:.1f} MiB) in {time.perf_counter() - start:.2f}s"
        )

        # 2-3. The returned dataset is file-backed: engines built on it serve
        # reads from the mapping without materializing the collection.
        out_of_core = SimilaritySearchEngine(dataset)
        print(f"engine backend: {out_of_core.store.backend.kind}")
        out_of_core.build("isax2+", leaf_capacity=500)

        queries = np.vstack(
            [
                np.asarray(q.series, dtype=np.float64)
                for q in synth_rand_workload(dataset.length, count=5, seed=91)
            ]
        )
        mmap_answers = out_of_core.search_batch(queries, k=5)

        # 4. Same file through the in-memory backend: identical answers.
        in_ram = SimilaritySearchEngine(dataset, backend="memory")
        in_ram.build("isax2+", leaf_capacity=500)
        ram_answers = in_ram.search_batch(queries, k=5)
        identical = all(
            a.positions() == b.positions() and a.distances() == b.distances()
            for a, b in zip(mmap_answers, ram_answers)
        )
        print(f"mmap answers byte-identical to memory backend: {identical}")

        # The sharded wrapper partitions the mapping zero-copy as well.
        sharded = SimilaritySearchEngine(dataset)
        sharded.build("sharded:flat", shards=2, workers=2)
        fan_out = sharded.search_batch(queries, k=5)
        print(
            "sharded:flat positions match:",
            all(a.positions() == b.positions() for a, b in zip(fan_out, mmap_answers)),
        )
        sharded.method.close()

        # 5. Persist and reload with no dataset object: the envelope records
        # the backend and source path, and load_method reopens the mapping.
        index_path = Path(tmp) / "isax.idx"
        envelope = save_method(out_of_core.method, index_path)
        print(f"saved index: {envelope.summary()}")
        reloaded = load_method(index_path)
        reload_answers = reloaded.knn_exact_batch(queries, k=5)
        print(
            "reloaded (no dataset arg) answers match:",
            all(
                a.positions() == b.positions()
                for a, b in zip(reload_answers, mmap_answers)
            ),
        )

        # 6. Compress the collection into the quantized .rcz format and serve
        # exact queries from a fraction of the bytes.
        rcz_path = Path(tmp) / "walks.rcz"
        compressed = dataset.to_compressed(rcz_path, qdtype="int8")
        rcz_mb = os.path.getsize(rcz_path) / 2**20
        print(
            f"compressed to {rcz_mb:.1f} MiB .rcz "
            f"({size_mb / rcz_mb:.1f}x smaller than raw float32)"
        )
        pruned = SimilaritySearchEngine(compressed)
        print(f"compressed engine backend: {pruned.store.backend.kind}")
        pruned.build("flat")
        # Queries drawn from the data prune hard: the tightening best-so-far
        # radius lets the quantized filter discard most tiles unread.
        near = np.asarray(compressed.values[:3], dtype=np.float64)
        result = pruned.method.knn_exact_batch(near, k=5)[0]
        print(
            f"pruned flat scan: {result.stats.physical_bytes_read / 2**20:.2f} MiB "
            f"physical vs {result.stats.bytes_read / 2**20:.2f} MiB logical "
            f"({result.stats.series_examined}/{compressed.count} series refined)"
        )

        # Bonus: calibrate a hardware cost model from *measured* I/O on this
        # very store, instead of the paper's published device constants.
        model = measure_platform(SeriesStore(dataset), random_probes=32)
        print(
            f"measured platform: {model.sequential_mb_per_s:.0f} MB/s sequential, "
            f"{model.random_access_ms * 1000:.1f} us per random access"
        )


if __name__ == "__main__":
    main()
