"""Quickstart: index a collection of data series and answer k-NN queries.

Run with::

    python examples/quickstart.py

The example builds a random-walk collection (the synthetic data model used in
the paper), indexes it with the DSTree, answers a few exact and approximate
queries, and compares the answers with a brute-force scan.
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, SimilaritySearchEngine
from repro.workloads import random_walk


def main() -> None:
    # 1. Build a dataset: 20,000 z-normalized random-walk series of length 128.
    series = random_walk(count=20_000, length=128, seed=42)
    dataset = Dataset(values=series, name="quickstart", normalized=True)
    print(f"dataset: {dataset.count} series of length {dataset.length} "
          f"({dataset.nbytes / 1e6:.1f} MB)")

    # 2. Ask the engine what the paper would recommend for this shape of data.
    engine = SimilaritySearchEngine(dataset)
    advice = engine.recommend()
    print(f"recommended method: {advice.method} ({advice.reason})")

    # 3. Build an index (DSTree here: slow-ish to build, very fast to query).
    build_stats = engine.build("dstree", leaf_capacity=200)
    print(f"built {build_stats.method}: {build_stats.total_nodes} nodes, "
          f"{build_stats.leaf_nodes} leaves, "
          f"{build_stats.build_cpu_seconds:.2f}s CPU")

    # 4. Answer an exact 5-NN query and verify against brute force.
    rng = np.random.default_rng(7)
    query = rng.standard_normal(128).cumsum()
    result = engine.search(query, k=5, normalize=True)
    truth = engine.brute_force(engine.dataset.values[result.positions()[0]], k=1)
    print("exact 5-NN:")
    for neighbor in result.neighbors:
        print(f"  series #{neighbor.position:6d} at distance {neighbor.distance:.4f}")
    print(f"pruning ratio: {result.stats.pruning_ratio:.3f} "
          f"({result.stats.series_examined} of {dataset.count} series examined)")
    assert truth[0].distance == 0.0  # the found neighbor is a real dataset series

    # 5. Approximate (ng-approximate) search: one leaf visit, no guarantee.
    approx = engine.search(query, k=5, exact=False, normalize=True)
    print(f"approximate best distance: {approx.distances()[0]:.4f} "
          f"(exact best was {result.distances()[0]:.4f})")


if __name__ == "__main__":
    main()
